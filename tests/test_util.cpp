// Tests for CSV writer and CLI parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace dlb {
namespace {

std::string read_file(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class CsvTest : public ::testing::Test {
protected:
    std::string path_ = ::testing::TempDir() + "dlb_csv_test.csv";
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        csv_writer csv(path_, {"round", "value"});
        csv.row({"0", "1.5"});
        csv.row({"1", "2.5"});
        EXPECT_EQ(csv.rows_written(), 2);
    }
    EXPECT_EQ(read_file(path_), "round,value\n0,1.5\n1,2.5\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows)
{
    csv_writer csv(path_, {"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyHeaderThrows)
{
    EXPECT_THROW(csv_writer(path_, {}), std::invalid_argument);
}

TEST_F(CsvTest, NumericRows)
{
    {
        csv_writer csv(path_, {"x", "y"});
        csv.row_numeric({1.0, 0.25});
    }
    EXPECT_EQ(read_file(path_), "x,y\n1,0.25\n");
}

TEST(CsvEscape, QuotesSpecialCharacters)
{
    EXPECT_EQ(csv_writer::escape("plain"), "plain");
    EXPECT_EQ(csv_writer::escape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csv_writer::escape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(csv_writer::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(FormatDouble, RoundTrips)
{
    for (const double v : {0.0, 1.0, -2.5, 0.1, 1e300, 1e-300, 3.141592653589793}) {
        EXPECT_EQ(std::stod(format_double(v)), v);
    }
}

TEST(ParseCsvLine, SplitsAndUnquotes)
{
    const auto plain = parse_csv_line("a,b,c");
    ASSERT_EQ(plain.size(), 3u);
    EXPECT_EQ(plain[0], "a");
    EXPECT_EQ(plain[2], "c");

    const auto empties = parse_csv_line("a,,c,");
    ASSERT_EQ(empties.size(), 4u);
    EXPECT_EQ(empties[1], "");
    EXPECT_EQ(empties[3], "");

    const auto quoted = parse_csv_line("\"with,comma\",\"with\"\"quote\",plain");
    ASSERT_EQ(quoted.size(), 3u);
    EXPECT_EQ(quoted[0], "with,comma");
    EXPECT_EQ(quoted[1], "with\"quote");
    EXPECT_EQ(quoted[2], "plain");

    ASSERT_EQ(parse_csv_line("").size(), 1u); // one empty cell
}

TEST(ParseCsvLine, InvertsEscapeExactly)
{
    const std::vector<std::string> cells = {"plain", "with,comma",
                                            "with\"quote", "", "1.5"};
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) line += ",";
        line += csv_writer::escape(cells[i]);
    }
    EXPECT_EQ(parse_csv_line(line), cells);
}

TEST(ParseCsvLine, RejectsMalformedQuoting)
{
    EXPECT_THROW(parse_csv_line("\"unterminated"), std::invalid_argument);
    EXPECT_THROW(parse_csv_line("\"closed\"trailing"), std::invalid_argument);
}

cli_args make_args(std::initializer_list<const char*> argv)
{
    std::vector<const char*> args(argv);
    return cli_args(static_cast<int>(args.size()), args.data());
}

TEST(Cli, ParsesFlagsAndValues)
{
    const auto args =
        make_args({"prog", "--full", "--rounds", "500", "--scale=0.5", "pos1"});
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.get_int("rounds", 0), 500);
    EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, Defaults)
{
    const auto args = make_args({"prog"});
    EXPECT_EQ(args.get_int("rounds", 123), 123);
    EXPECT_EQ(args.get_string("name", "fallback"), "fallback");
    EXPECT_TRUE(args.get_bool("verbose", true));
}

TEST(Cli, BoolForms)
{
    const auto args = make_args({"prog", "--a", "true", "--b=false", "--c", "--d=1"});
    EXPECT_TRUE(args.get_bool("a", false));
    EXPECT_FALSE(args.get_bool("b", true));
    EXPECT_TRUE(args.get_bool("c", false)); // bare flag
    EXPECT_TRUE(args.get_bool("d", false));
}

TEST(Cli, BadBoolThrows)
{
    const auto args = make_args({"prog", "--flag", "maybe"});
    EXPECT_THROW(args.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, EqualsFormBindsTightly)
{
    const auto args = make_args({"prog", "--key=a=b"});
    EXPECT_EQ(args.get_string("key", ""), "a=b");
}

} // namespace
} // namespace dlb
