// Tests for CSV writer, CLI parser, the monotonic timer, and the
// atomic-save temp-file helpers.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/tempfile.hpp"
#include "util/timer.hpp"

namespace dlb {
namespace {

std::string read_file(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class CsvTest : public ::testing::Test {
protected:
    std::string path_ = ::testing::TempDir() + "dlb_csv_test.csv";
    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        csv_writer csv(path_, {"round", "value"});
        csv.row({"0", "1.5"});
        csv.row({"1", "2.5"});
        EXPECT_EQ(csv.rows_written(), 2);
    }
    EXPECT_EQ(read_file(path_), "round,value\n0,1.5\n1,2.5\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows)
{
    csv_writer csv(path_, {"a", "b"});
    EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyHeaderThrows)
{
    EXPECT_THROW(csv_writer(path_, {}), std::invalid_argument);
}

TEST_F(CsvTest, NumericRows)
{
    {
        csv_writer csv(path_, {"x", "y"});
        csv.row_numeric({1.0, 0.25});
    }
    EXPECT_EQ(read_file(path_), "x,y\n1,0.25\n");
}

TEST(CsvEscape, QuotesSpecialCharacters)
{
    EXPECT_EQ(csv_writer::escape("plain"), "plain");
    EXPECT_EQ(csv_writer::escape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csv_writer::escape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(csv_writer::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(FormatDouble, RoundTrips)
{
    for (const double v : {0.0, 1.0, -2.5, 0.1, 1e300, 1e-300, 3.141592653589793}) {
        EXPECT_EQ(std::stod(format_double(v)), v);
    }
}

TEST(ParseCsvLine, SplitsAndUnquotes)
{
    const auto plain = parse_csv_line("a,b,c");
    ASSERT_EQ(plain.size(), 3u);
    EXPECT_EQ(plain[0], "a");
    EXPECT_EQ(plain[2], "c");

    const auto empties = parse_csv_line("a,,c,");
    ASSERT_EQ(empties.size(), 4u);
    EXPECT_EQ(empties[1], "");
    EXPECT_EQ(empties[3], "");

    const auto quoted = parse_csv_line("\"with,comma\",\"with\"\"quote\",plain");
    ASSERT_EQ(quoted.size(), 3u);
    EXPECT_EQ(quoted[0], "with,comma");
    EXPECT_EQ(quoted[1], "with\"quote");
    EXPECT_EQ(quoted[2], "plain");

    ASSERT_EQ(parse_csv_line("").size(), 1u); // one empty cell
}

TEST(ParseCsvLine, InvertsEscapeExactly)
{
    const std::vector<std::string> cells = {"plain", "with,comma",
                                            "with\"quote", "", "1.5"};
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) line += ",";
        line += csv_writer::escape(cells[i]);
    }
    EXPECT_EQ(parse_csv_line(line), cells);
}

TEST(ParseCsvLine, RejectsMalformedQuoting)
{
    EXPECT_THROW(parse_csv_line("\"unterminated"), std::invalid_argument);
    EXPECT_THROW(parse_csv_line("\"closed\"trailing"), std::invalid_argument);
}

cli_args make_args(std::initializer_list<const char*> argv)
{
    std::vector<const char*> args(argv);
    return cli_args(static_cast<int>(args.size()), args.data());
}

TEST(Cli, ParsesFlagsAndValues)
{
    const auto args =
        make_args({"prog", "--full", "--rounds", "500", "--scale=0.5", "pos1"});
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.get_int("rounds", 0), 500);
    EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, Defaults)
{
    const auto args = make_args({"prog"});
    EXPECT_EQ(args.get_int("rounds", 123), 123);
    EXPECT_EQ(args.get_string("name", "fallback"), "fallback");
    EXPECT_TRUE(args.get_bool("verbose", true));
}

TEST(Cli, BoolForms)
{
    const auto args = make_args({"prog", "--a", "true", "--b=false", "--c", "--d=1"});
    EXPECT_TRUE(args.get_bool("a", false));
    EXPECT_FALSE(args.get_bool("b", true));
    EXPECT_TRUE(args.get_bool("c", false)); // bare flag
    EXPECT_TRUE(args.get_bool("d", false));
}

TEST(Cli, BadBoolThrows)
{
    const auto args = make_args({"prog", "--flag", "maybe"});
    EXPECT_THROW(args.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, EqualsFormBindsTightly)
{
    const auto args = make_args({"prog", "--key=a=b"});
    EXPECT_EQ(args.get_string("key", ""), "a=b");
}

// Numeric getters must consume the full token: `--rounds 100x` is a typo
// to report (naming the flag), never a silent 100.
TEST(Cli, RejectsTrailingGarbageNamingTheFlag)
{
    const auto args = make_args(
        {"prog", "--rounds", "100x", "--alpha", "0.5abc", "--seed", "7seven"});
    try {
        args.get_int("rounds", 0);
        FAIL() << "get_int accepted '100x'";
    } catch (const std::invalid_argument& rejected) {
        EXPECT_NE(std::string(rejected.what()).find("--rounds"),
                  std::string::npos)
            << "error should name the flag: " << rejected.what();
        EXPECT_NE(std::string(rejected.what()).find("100x"), std::string::npos)
            << "error should echo the value: " << rejected.what();
    }
    try {
        args.get_double("alpha", 0.0);
        FAIL() << "get_double accepted '0.5abc'";
    } catch (const std::invalid_argument& rejected) {
        EXPECT_NE(std::string(rejected.what()).find("--alpha"),
                  std::string::npos)
            << rejected.what();
    }
    try {
        args.get_uint64("seed", 0);
        FAIL() << "get_uint64 accepted '7seven'";
    } catch (const std::invalid_argument& rejected) {
        EXPECT_NE(std::string(rejected.what()).find("--seed"),
                  std::string::npos)
            << rejected.what();
    }
}

TEST(Cli, RejectsUnparseableAndOutOfRangeNumbersNamingTheFlag)
{
    const auto args =
        make_args({"prog", "--rounds", "ten", "--scale", "x", "--seed", "-1",
                   "--big", "99999999999999999999999999"});
    EXPECT_THROW(args.get_int("rounds", 0), std::invalid_argument);
    EXPECT_THROW(args.get_double("scale", 0.0), std::invalid_argument);
    // Negative for an unsigned and out-of-range both name the flag too.
    try {
        args.get_uint64("seed", 0);
        FAIL() << "get_uint64 accepted '-1'";
    } catch (const std::invalid_argument& rejected) {
        EXPECT_NE(std::string(rejected.what()).find("--seed"),
                  std::string::npos)
            << rejected.what();
    }
    // A leading space must not smuggle a sign past the unsigned guard
    // (std::stoull skips whitespace and would wrap ' -1' to 2^64-1).
    const auto padded = make_args({"prog", "--seed", " -1"});
    EXPECT_THROW(padded.get_uint64("seed", 0), std::invalid_argument);
    try {
        args.get_int("big", 0);
        FAIL() << "get_int accepted an out-of-range value";
    } catch (const std::invalid_argument& rejected) {
        EXPECT_NE(std::string(rejected.what()).find("--big"), std::string::npos)
            << rejected.what();
    }
}

TEST(Cli, WellFormedNumbersStillParse)
{
    const auto args =
        make_args({"prog", "--rounds", "-42", "--scale", "2.5e-3", "--seed",
                   "18446744073709551615", "--hex-free", "007"});
    EXPECT_EQ(args.get_int("rounds", 0), -42);
    EXPECT_DOUBLE_EQ(args.get_double("scale", 0.0), 2.5e-3);
    EXPECT_EQ(args.get_uint64("seed", 0), 18446744073709551615ull);
    EXPECT_EQ(args.get_int("hex-free", 0), 7);
    // Bare flags (empty value) still fall back rather than throw.
    const auto bare = make_args({"prog", "--flag"});
    EXPECT_EQ(bare.get_int("flag", 5), 5);
    EXPECT_DOUBLE_EQ(bare.get_double("flag", 1.5), 1.5);
    EXPECT_EQ(bare.get_uint64("flag", 9), 9u);
}

// now_ns() is the single time source for stopwatch, obs trace spans and the
// progress heartbeats (util/timer.hpp). It must be monotone non-decreasing —
// a system_clock regression here would let NTP steps produce negative span
// durations and misfired heartbeats.
TEST(Timer, NowNsIsMonotoneNonDecreasing)
{
    std::int64_t previous = now_ns();
    for (int i = 0; i < 100000; ++i) {
        const std::int64_t current = now_ns();
        ASSERT_GE(current, previous) << "clock went backwards at sample " << i;
        previous = current;
    }
}

TEST(Timer, StopwatchElapsedIsNonNegativeAndIncreases)
{
    stopwatch watch;
    const double first = watch.seconds();
    EXPECT_GE(first, 0.0);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    const double second = watch.seconds();
    EXPECT_GE(second, first);
    // milliseconds() is defined as seconds() * 1e3; successive reads may
    // advance, so only bound it from below.
    EXPECT_GE(watch.milliseconds(), second * 1e3);
    watch.reset();
    EXPECT_LE(watch.seconds(), second + 1.0); // reset restarts from ~zero
}

// A pid guaranteed not to name a live process: fork a child that exits
// immediately, reap it, and return its now-recycled-but-free pid.
long provably_dead_pid()
{
    const pid_t child = ::fork();
    EXPECT_GE(child, 0);
    if (child == 0) ::_exit(0);
    int status = 0;
    EXPECT_EQ(::waitpid(child, &status, 0), child);
    return static_cast<long>(child);
}

class TempfileTest : public ::testing::Test {
protected:
    std::string dir_ = ::testing::TempDir() + "dlb_tempfile_test";
    void SetUp() override
    {
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::string touch(const std::string& name)
    {
        const std::string path = dir_ + "/" + name;
        std::ofstream(path) << "x\n";
        return path;
    }
};

TEST_F(TempfileTest, TempPathEmbedsOwnPidAndRoundTripsTheParser)
{
    const std::string temp = temp_path_for(dir_ + "/report.csv");
    // Next to the destination, and recognizably a temp of it.
    EXPECT_EQ(temp.rfind(dir_ + "/report.csv.tmp.", 0), 0u) << temp;
    long pid = 0;
    EXPECT_TRUE(is_temp_file_name(
        std::filesystem::path(temp).filename().string(), &pid));
    EXPECT_EQ(pid, static_cast<long>(::getpid()));
    // Successive temps for the same path never collide (distinct serials).
    EXPECT_NE(temp, temp_path_for(dir_ + "/report.csv"));
}

TEST_F(TempfileTest, MalformedNamesAreNotTemps)
{
    EXPECT_FALSE(is_temp_file_name("report.csv"));
    EXPECT_FALSE(is_temp_file_name("report.csv.tmp.12"));   // no serial
    EXPECT_FALSE(is_temp_file_name("report.csv.tmp..3"));   // empty pid
    EXPECT_FALSE(is_temp_file_name("report.csv.tmp.a.b"));  // non-numeric
    EXPECT_FALSE(is_temp_file_name(".tmp.12.3"));           // empty base
    EXPECT_TRUE(is_temp_file_name("report.csv.tmp.12.3"));
}

TEST_F(TempfileTest, SweepRemovesDeadPidTempsOnly)
{
    const long dead = provably_dead_pid();
    const std::string orphan =
        touch("a.csv.tmp." + std::to_string(dead) + ".0");
    const std::string live = touch(
        "a.csv.tmp." + std::to_string(static_cast<long>(::getpid())) + ".7");
    const std::string real = touch("a.csv");
    const std::string unrelated = touch("notes.txt");

    EXPECT_EQ(sweep_stale_temp_files(dir_), 1u);
    EXPECT_FALSE(std::filesystem::exists(orphan)); // dead writer: swept
    EXPECT_TRUE(std::filesystem::exists(live));    // in-flight save: kept
    EXPECT_TRUE(std::filesystem::exists(real));    // destination: kept
    EXPECT_TRUE(std::filesystem::exists(unrelated));
    EXPECT_EQ(sweep_stale_temp_files(dir_), 0u); // idempotent
}

TEST_F(TempfileTest, SweepPrefixFilterScopesToOneDestination)
{
    const long dead = provably_dead_pid();
    const std::string mine =
        touch("a.csv.tmp." + std::to_string(dead) + ".1");
    const std::string other =
        touch("b.csv.tmp." + std::to_string(dead) + ".2");

    EXPECT_EQ(sweep_stale_temp_files(dir_, "a.csv"), 1u);
    EXPECT_FALSE(std::filesystem::exists(mine));
    EXPECT_TRUE(std::filesystem::exists(other)); // outside the prefix: kept
}

TEST_F(TempfileTest, SweepOfMissingDirectoryRemovesNothing)
{
    EXPECT_EQ(sweep_stale_temp_files(dir_ + "/does-not-exist"), 0u);
}

} // namespace
} // namespace dlb
