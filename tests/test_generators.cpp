// Tests for every graph generator: node/edge counts, degrees, structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dlb {
namespace {

TEST(Torus2d, CountsAndRegularity)
{
    const graph g = make_torus_2d(5, 7);
    EXPECT_EQ(g.num_nodes(), 35);
    EXPECT_EQ(g.num_edges(), 2 * 35);
    for (node_id v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4);
    EXPECT_TRUE(is_connected(g));
}

TEST(Torus2d, WrapAroundNeighbors)
{
    const graph g = make_torus_2d(4, 4);
    // Node 0 = (col 0, row 0): neighbors (1,0), (3,0), (0,1), (0,3).
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(0, 3));
    EXPECT_TRUE(g.has_edge(0, 4));
    EXPECT_TRUE(g.has_edge(0, 12));
    EXPECT_FALSE(g.has_edge(0, 5));
}

TEST(Torus2d, MinimumSideEnforced)
{
    EXPECT_THROW(make_torus_2d(2, 5), std::invalid_argument);
    EXPECT_THROW(make_torus_2d(5, 2), std::invalid_argument);
    EXPECT_NO_THROW(make_torus_2d(3, 3));
}

TEST(TorusKd, ThreeDimensional)
{
    const graph g = make_torus_kd({3, 4, 5});
    EXPECT_EQ(g.num_nodes(), 60);
    for (node_id v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 6);
    EXPECT_TRUE(is_connected(g));
}

TEST(TorusKd, MatchesTorus2d)
{
    const graph a = make_torus_kd({5, 6});
    const graph b = make_torus_2d(5, 6);
    EXPECT_EQ(a.num_nodes(), b.num_nodes());
    EXPECT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.edge_list(), b.edge_list());
}

TEST(Grid2d, BoundaryDegrees)
{
    const graph g = make_grid_2d(4, 3);
    EXPECT_EQ(g.num_nodes(), 12);
    EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2); // horizontal + vertical
    EXPECT_EQ(g.degree(0), 2);               // corner
    EXPECT_EQ(g.degree(1), 3);               // edge
    EXPECT_EQ(g.degree(5), 4);               // interior
    EXPECT_TRUE(is_connected(g));
}

TEST(Hypercube, CountsAndStructure)
{
    const graph g = make_hypercube(5);
    EXPECT_EQ(g.num_nodes(), 32);
    EXPECT_EQ(g.num_edges(), 32 * 5 / 2);
    for (node_id v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 5);
    // Neighbors differ in exactly one bit.
    for (node_id v = 0; v < g.num_nodes(); ++v)
        for (const node_id u : g.neighbors(v))
            EXPECT_EQ(__builtin_popcount(static_cast<unsigned>(v ^ u)), 1);
    EXPECT_TRUE(is_connected(g));
    EXPECT_TRUE(is_bipartite(g));
}

TEST(Cycle, Structure)
{
    const graph g = make_cycle(10);
    EXPECT_EQ(g.num_edges(), 10);
    for (node_id v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2);
    EXPECT_EQ(diameter_exact(g), 5);
}

TEST(Path, Structure)
{
    const graph g = make_path(10);
    EXPECT_EQ(g.num_edges(), 9);
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(9), 1);
    EXPECT_EQ(g.degree(5), 2);
    EXPECT_EQ(diameter_exact(g), 9);
}

TEST(Complete, Structure)
{
    const graph g = make_complete(8);
    EXPECT_EQ(g.num_edges(), 8 * 7 / 2);
    for (node_id v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 7);
    EXPECT_EQ(diameter_exact(g), 1);
}

TEST(Star, Structure)
{
    const graph g = make_star(9);
    EXPECT_EQ(g.num_edges(), 8);
    EXPECT_EQ(g.degree(0), 8);
    for (node_id v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(RandomRegularCm, NearRegularAndDeterministic)
{
    const graph g = make_random_regular_cm(2000, 10, 99);
    EXPECT_EQ(g.num_nodes(), 2000);
    // Erased configuration model: at most d, and almost always close to d.
    std::int64_t degree_sum = 0;
    for (node_id v = 0; v < g.num_nodes(); ++v) {
        EXPECT_LE(g.degree(v), 10);
        degree_sum += g.degree(v);
    }
    // Less than 1% of stubs erased, typically.
    EXPECT_GE(degree_sum, static_cast<std::int64_t>(0.99 * 2000 * 10));

    const graph g2 = make_random_regular_cm(2000, 10, 99);
    EXPECT_EQ(g.edge_list(), g2.edge_list());
    const graph g3 = make_random_regular_cm(2000, 10, 100);
    EXPECT_NE(g.edge_list(), g3.edge_list());
}

TEST(RandomRegularCm, OddProductRejected)
{
    EXPECT_THROW(make_random_regular_cm(5, 3, 1), std::invalid_argument);
}

TEST(RandomRegularExact, ExactlyRegular)
{
    const graph g = make_random_regular_exact(100, 4, 7);
    for (node_id v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(RandomRegularExact, ConnectedWhp)
{
    // d >= 3 random regular graphs are connected w.h.p.
    const graph g = make_random_regular_exact(500, 4, 3);
    EXPECT_TRUE(is_connected(g));
}

TEST(ErdosRenyi, EdgeCountNearExpectation)
{
    const node_id n = 500;
    const double p = 0.05;
    const graph g = make_erdos_renyi(n, p, 11);
    const double expected = p * n * (n - 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4 * std::sqrt(expected));
}

TEST(ErdosRenyi, ExtremeProbabilities)
{
    EXPECT_EQ(make_erdos_renyi(50, 0.0, 1).num_edges(), 0);
    EXPECT_EQ(make_erdos_renyi(50, 1.0, 1).num_edges(), 50 * 49 / 2);
}

TEST(ErdosRenyi, Deterministic)
{
    const graph a = make_erdos_renyi(200, 0.02, 5);
    const graph b = make_erdos_renyi(200, 0.02, 5);
    EXPECT_EQ(a.edge_list(), b.edge_list());
}

TEST(RandomGeometric, ConnectedByConstruction)
{
    // Small radius leaves isolated nodes that must be reattached to the
    // giant component (the paper's post-processing).
    const graph g = make_random_geometric(500, 1.2, 21);
    EXPECT_EQ(g.num_nodes(), 500);
    EXPECT_TRUE(is_connected(g));
}

TEST(RandomGeometric, EdgesRespectRadiusBeforeReattachment)
{
    std::vector<double> coords;
    const double radius = rgg_paper_radius(400);
    const graph g = make_random_geometric(400, radius, 31, &coords);
    ASSERT_EQ(coords.size(), 800u);
    // Count long edges: only reattachment edges may exceed the radius, and
    // those are few (isolated components are rare at this radius).
    std::int64_t long_edges = 0;
    for (const auto& [u, v] : g.edge_list()) {
        const double dx = coords[2 * u] - coords[2 * v];
        const double dy = coords[2 * u + 1] - coords[2 * v + 1];
        if (std::sqrt(dx * dx + dy * dy) > radius + 1e-9) ++long_edges;
    }
    EXPECT_LE(long_edges, g.num_edges() / 20);
}

TEST(RandomGeometric, DeterministicInSeed)
{
    const graph a = make_random_geometric(300, 1.5, 77);
    const graph b = make_random_geometric(300, 1.5, 77);
    EXPECT_EQ(a.edge_list(), b.edge_list());
}

TEST(RggPaperRadius, Formula)
{
    EXPECT_NEAR(rgg_paper_radius(10000), std::sqrt(std::log(10000.0)), 1e-12);
    EXPECT_NEAR(rgg_paper_radius(10000, 2.0), 2.0 * std::sqrt(std::log(10000.0)),
                1e-12);
}

} // namespace
} // namespace dlb
