// Tests for the discrete process engine: conservation, deviation from the
// continuous twin, negative-load tracking, prevention policy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

diffusion_config make_config(const graph& g, scheme_params scheme)
{
    return {&g, make_alpha(g, alpha_policy::max_degree_plus_one),
            speed_profile::uniform(g.num_nodes()), scheme};
}

TEST(DiscreteProcess, ExactTokenConservation)
{
    const graph g = make_torus_2d(6, 6);
    for (const auto rounding :
         {rounding_kind::randomized, rounding_kind::floor, rounding_kind::nearest,
          rounding_kind::bernoulli_edge}) {
        discrete_process proc(make_config(g, fos_scheme()),
                              point_load(36, 0, 36000), rounding, 42);
        proc.run(200);
        EXPECT_TRUE(proc.verify_conservation()) << to_string(rounding);
        EXPECT_EQ(proc.total_load(), 36000) << to_string(rounding);
    }
}

TEST(DiscreteProcess, SosConservation)
{
    const graph g = make_torus_2d(8, 8);
    const double beta = beta_opt(torus_2d_lambda(8, 8));
    discrete_process proc(make_config(g, sos_scheme(beta)),
                          point_load(64, 0, 64000), rounding_kind::randomized, 7);
    proc.run(500);
    EXPECT_TRUE(proc.verify_conservation());
}

TEST(DiscreteProcess, BalancedInputStaysBalanced)
{
    // With perfectly balanced integer loads all scheduled flows are zero.
    const graph g = make_random_regular_exact(40, 4, 9);
    discrete_process proc(make_config(g, fos_scheme()), balanced_load(40, 25),
                          rounding_kind::randomized, 3);
    proc.run(50);
    for (const auto v : proc.load()) EXPECT_EQ(v, 25);
}

TEST(DiscreteProcess, ConvergesNearAverage)
{
    const graph g = make_torus_2d(8, 8);
    discrete_process proc(make_config(g, fos_scheme()), point_load(64, 0, 64000),
                          rounding_kind::randomized, 5);
    proc.run(3000);
    // Paper: FOS reaches a constant remaining imbalance (single digits).
    EXPECT_LE(max_minus_average(proc.load()), 10.0);
    EXPECT_GE(min_load(proc.load()), 1000.0 - 10.0);
}

TEST(DiscreteProcess, DeterministicInSeed)
{
    // Compare mid-convergence (after full convergence all seeds coincide at
    // the balanced configuration, which would make the inequality vacuous).
    const graph g = make_torus_2d(5, 5);
    discrete_process a(make_config(g, fos_scheme()), point_load(25, 0, 2500),
                       rounding_kind::randomized, 11);
    discrete_process b(make_config(g, fos_scheme()), point_load(25, 0, 2500),
                       rounding_kind::randomized, 11);
    discrete_process c(make_config(g, fos_scheme()), point_load(25, 0, 2500),
                       rounding_kind::randomized, 12);
    a.run(8);
    b.run(8);
    c.run(8);
    EXPECT_TRUE(std::equal(a.load().begin(), a.load().end(), b.load().begin()));
    EXPECT_FALSE(std::equal(a.load().begin(), a.load().end(), c.load().begin()));
}

TEST(DiscreteProcess, StaysCloseToContinuousTwinFos)
{
    // Theorem 4 shape: deviation O(d sqrt(log n / (1-lambda))) — for the
    // 8x8 torus this is far below the slack asserted here.
    const graph g = make_torus_2d(8, 8);
    const auto config = make_config(g, fos_scheme());
    discrete_process discrete(config, point_load(64, 0, 6400),
                              rounding_kind::randomized, 21);
    continuous_process continuous(config, to_continuous(point_load(64, 0, 6400)));
    double worst = 0.0;
    for (int t = 0; t < 400; ++t) {
        discrete.step();
        continuous.step();
        worst = std::max(worst, max_deviation(discrete.load(), continuous.load()));
    }
    EXPECT_LT(worst, 60.0);
}

TEST(DiscreteProcess, StaysCloseToContinuousTwinSos)
{
    const graph g = make_torus_2d(8, 8);
    const double beta = beta_opt(torus_2d_lambda(8, 8));
    const auto config = make_config(g, sos_scheme(beta));
    discrete_process discrete(config, point_load(64, 0, 6400),
                              rounding_kind::randomized, 23);
    continuous_process continuous(config, to_continuous(point_load(64, 0, 6400)));
    double worst = 0.0;
    for (int t = 0; t < 400; ++t) {
        discrete.step();
        continuous.step();
        worst = std::max(worst, max_deviation(discrete.load(), continuous.load()));
    }
    EXPECT_LT(worst, 120.0);
}

TEST(DiscreteProcess, TransientTrackingDetectsNegativeSos)
{
    // A large point load with SOS overshoots: some node sees negative
    // transient load during the run (that is the paper's Section V premise).
    const graph g = make_torus_2d(10, 10);
    const double beta = beta_opt(torus_2d_lambda(10, 10));
    discrete_process proc(make_config(g, sos_scheme(beta)),
                          point_load(100, 0, 100000), rounding_kind::randomized, 2);
    proc.run(300);
    EXPECT_LT(proc.negative_stats().min_transient_load, 0.0);
}

TEST(DiscreteProcess, PreventPolicyKeepsLoadsNonNegative)
{
    const graph g = make_torus_2d(10, 10);
    const double beta = beta_opt(torus_2d_lambda(10, 10));
    discrete_process proc(make_config(g, sos_scheme(beta)),
                          point_load(100, 0, 100000), rounding_kind::randomized, 2,
                          negative_load_policy::prevent);
    proc.run(300);
    EXPECT_GE(proc.negative_stats().min_end_of_round_load, 0.0);
    EXPECT_GE(proc.negative_stats().min_transient_load, 0.0);
    EXPECT_GT(proc.clipped_tokens(), 0);
    EXPECT_TRUE(proc.verify_conservation());
}

TEST(DiscreteProcess, AllowPolicyReportsZeroClipped)
{
    const graph g = make_cycle(8);
    discrete_process proc(make_config(g, fos_scheme()), point_load(8, 0, 800),
                          rounding_kind::randomized, 3);
    proc.run(50);
    EXPECT_EQ(proc.clipped_tokens(), 0);
}

TEST(DiscreteProcess, HeterogeneousBalancesProportionally)
{
    const graph g = make_torus_2d(5, 5);
    std::vector<double> speed_values(25, 1.0);
    for (int i = 0; i < 25; i += 5) speed_values[i] = 4.0;
    const auto speeds = speed_profile::from_vector(speed_values);
    diffusion_config config{&g, make_alpha(g, alpha_policy::max_degree_plus_one),
                            speeds, fos_scheme()};
    const std::int64_t total = 40000;
    discrete_process proc(config, point_load(25, 3, total),
                          rounding_kind::randomized, 31);
    proc.run(4000);
    EXPECT_TRUE(proc.verify_conservation());
    const auto ideal = speeds.ideal_load(static_cast<double>(total));
    // Every node within a small constant of its speed-proportional share.
    for (node_id v = 0; v < 25; ++v)
        EXPECT_NEAR(static_cast<double>(proc.load()[v]), ideal[v], 25.0)
            << "node " << v << " speed " << speeds.speed(v);
}

TEST(DiscreteProcess, SwitchToFosReducesImbalance)
{
    // The paper's headline hybrid observation, in miniature.
    const graph g = make_torus_2d(10, 10);
    const double beta = beta_opt(torus_2d_lambda(10, 10));
    discrete_process proc(make_config(g, sos_scheme(beta)),
                          point_load(100, 0, 100000), rounding_kind::randomized, 8);
    proc.run(600);
    const double sos_imbalance = max_minus_average(proc.load());
    proc.set_scheme(fos_scheme());
    proc.run(400);
    const double fos_imbalance = max_minus_average(proc.load());
    EXPECT_LE(fos_imbalance, sos_imbalance);
    EXPECT_LE(fos_imbalance, 6.0);
}

TEST(DiscreteProcess, ScheduledFlowIntrospection)
{
    const graph g = make_path(3);
    discrete_process proc(make_config(g, fos_scheme()),
                          std::vector<std::int64_t>{9, 3, 0},
                          rounding_kind::floor, 1);
    proc.step();
    // FOS flows: edge (0,1): 2.0, edge (1,2): 1.0 (alpha = 1/3).
    const auto scheduled = proc.last_scheduled_flows();
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
        if (g.head(h) == 1) {
            EXPECT_NEAR(scheduled[h], 2.0, 1e-12);
        }
    }
    // Loads after the step: 9-2=7, 3+2-1=4, 0+1=1.
    EXPECT_EQ(proc.load()[0], 7);
    EXPECT_EQ(proc.load()[1], 4);
    EXPECT_EQ(proc.load()[2], 1);
}

TEST(DiscreteProcess, NegativeStatsStartAtInfinity)
{
    const graph g = make_cycle(4);
    discrete_process proc(make_config(g, fos_scheme()), balanced_load(4, 5),
                          rounding_kind::randomized, 1);
    EXPECT_TRUE(std::isinf(proc.negative_stats().min_end_of_round_load));
    proc.step();
    EXPECT_EQ(proc.negative_stats().min_end_of_round_load, 5.0);
}

} // namespace
} // namespace dlb
