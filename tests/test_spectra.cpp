// Tests for analytic spectra, including the Table I beta cross-checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/beta.hpp"
#include "linalg/spectra.hpp"

namespace dlb {
namespace {

TEST(Spectra, TorusModeZeroIsOne)
{
    EXPECT_DOUBLE_EQ(torus_2d_mode_eigenvalue(10, 10, 0, 0), 1.0);
}

TEST(Spectra, TorusEigenvaluesWithinBand)
{
    // M = I - L/5 on a 4-regular graph: eigenvalues in [1 - 8/5, 1].
    for (const auto values = torus_2d_spectrum(6, 7); const double mu : values) {
        EXPECT_LE(mu, 1.0 + 1e-12);
        EXPECT_GE(mu, -0.6 - 1e-12);
    }
}

TEST(Spectra, TorusLambdaIsSecondLargestMagnitude)
{
    for (const node_id w : {4, 5, 8}) {
        for (const node_id h : {4, 6, 9}) {
            const auto values = torus_2d_spectrum(w, h);
            double expected = 0.0;
            for (const double mu : values)
                if (std::abs(std::abs(mu) - 1.0) > 1e-12)
                    expected = std::max(expected, std::abs(mu));
            EXPECT_NEAR(torus_2d_lambda(w, h), expected, 1e-12)
                << "w=" << w << " h=" << h;
        }
    }
}

TEST(Spectra, TorusKdMatches2dCase)
{
    EXPECT_NEAR(torus_kd_lambda({10, 12}), torus_2d_lambda(10, 12), 1e-12);
}

TEST(Spectra, HypercubeKnownValues)
{
    EXPECT_DOUBLE_EQ(hypercube_lambda(1), 0.0);
    EXPECT_DOUBLE_EQ(hypercube_lambda(3), 0.5);
    EXPECT_DOUBLE_EQ(hypercube_lambda(20), 19.0 / 21.0);
}

TEST(Spectra, CycleSpectrumSortedAndComplete)
{
    const auto values = cycle_spectrum(12);
    ASSERT_EQ(values.size(), 12u);
    EXPECT_DOUBLE_EQ(values.front(), 1.0);
    for (std::size_t i = 1; i < values.size(); ++i)
        EXPECT_LE(values[i], values[i - 1]);
}

TEST(Spectra, CompleteLambdaZero)
{
    EXPECT_DOUBLE_EQ(complete_lambda(10), 0.0);
}

// --- Table I reproduction: analytic lambda -> beta_opt must match the
// --- paper's printed beta values. The paper computed lambda numerically
// --- (LAPACK), so the last 2-3 printed digits differ from the closed form;
// --- agreement to 1e-6 pins the same parameterization.

TEST(Table1, Torus1000)
{
    const double lambda = torus_2d_lambda(1000, 1000);
    EXPECT_NEAR(beta_opt(lambda), 1.9920836447, 1e-6);
}

TEST(Table1, Torus100)
{
    const double lambda = torus_2d_lambda(100, 100);
    EXPECT_NEAR(beta_opt(lambda), 1.9235874877, 1e-6);
}

TEST(Table1, Hypercube20)
{
    const double lambda = hypercube_lambda(20);
    EXPECT_NEAR(beta_opt(lambda), 1.4026054847, 1e-6);
}

TEST(Spectra, InvalidArguments)
{
    EXPECT_THROW(torus_2d_lambda(2, 5), std::invalid_argument);
    EXPECT_THROW(cycle_lambda(2), std::invalid_argument);
    EXPECT_THROW(hypercube_lambda(0), std::invalid_argument);
    EXPECT_THROW(complete_lambda(1), std::invalid_argument);
    EXPECT_THROW(torus_kd_lambda({}), std::invalid_argument);
}

TEST(Spectra, GapShrinksWithTorusSize)
{
    const double gap10 = spectral_gap(torus_2d_lambda(10, 10));
    const double gap100 = spectral_gap(torus_2d_lambda(100, 100));
    EXPECT_GT(gap10, gap100);
    // Asymptotically gap ~ (2/5) * (2 pi / w)^2 / 2: ratio ~ 100.
    EXPECT_NEAR(gap10 / gap100, 100.0, 5.0);
}

} // namespace
} // namespace dlb
