// Tests for contribution rows: the row recursion must match dense matrix
// powers (FOS) and the Q(t) sequence (SOS), and Lemma 6 must hold against
// brute-force twin runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/contribution.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/process.hpp"
#include "core/second_order_matrix.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"

namespace dlb {
namespace {

TEST(Contribution, FosRowMatchesDensePower)
{
    const graph g = make_torus_2d(3, 4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const node_id k = 5;

    contribution_rows rows(g, alpha, speeds, fos_scheme(), k);
    const auto m = make_dense_diffusion_matrix(g, alpha, speeds);
    dense_matrix power = dense_matrix::identity(12);

    for (int t = 0; t < 15; ++t) {
        for (node_id i = 0; i < 12; ++i)
            EXPECT_NEAR(rows.row()[i], power(k, i), 1e-10)
                << "t=" << t << " i=" << i;
        rows.advance();
        power = power.multiply(m);
    }
}

TEST(Contribution, FosRowMatchesDensePowerHeterogeneous)
{
    const graph g = make_cycle(6);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::from_vector({1, 2, 1, 3, 1, 2});
    const node_id k = 2;

    contribution_rows rows(g, alpha, speeds, fos_scheme(), k);
    const auto m = make_dense_diffusion_matrix(g, alpha, speeds);
    dense_matrix power = dense_matrix::identity(6);
    for (int t = 0; t < 12; ++t) {
        for (node_id i = 0; i < 6; ++i)
            EXPECT_NEAR(rows.row()[i], power(k, i), 1e-10)
                << "t=" << t << " i=" << i;
        rows.advance();
        power = power.multiply(m);
    }
}

TEST(Contribution, SosRowMatchesQSequence)
{
    const graph g = make_torus_2d(3, 3);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(9);
    const double beta = 1.6;
    const node_id k = 4;

    contribution_rows rows(g, alpha, speeds, sos_scheme(beta), k);
    const auto m = make_dense_diffusion_matrix(g, alpha, speeds);
    q_sequence q(m, beta);
    for (int t = 0; t < 15; ++t) {
        for (node_id i = 0; i < 9; ++i)
            EXPECT_NEAR(rows.row()[i], q.current()(k, i), 1e-10)
                << "t=" << t << " i=" << i;
        rows.advance();
        q.advance();
    }
}

TEST(Contribution, Lemma6AgainstBruteForceTwinRuns)
{
    // Definition 5: start two SOS processes from x = i-hat with y(0) = 0,
    // and from x' = j-hat with y'_{i,j}(0) = 1. Then
    // x(t) - x'(t) at node k equals Q_{k,i}(t-1) - Q_{k,j}(t-1).
    const graph g = make_torus_2d(3, 3);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(9);
    const double beta = 1.5;
    const diffusion_config config{&g, alpha, speeds, sos_scheme(beta)};

    // Pick the edge (i, j) and the observer k.
    const node_id i = 0;
    const node_id j = *g.neighbors(0).begin();
    const node_id k = 7;

    // Process A: x(1) = i-hat, y(0) = 0. Process B: x'(1) = j-hat,
    // y'(0) = 1 on (i, j). We emulate "x(1), y(0)" by running the engine
    // from round 1: construct engines whose state matches after their
    // internal first round. Easiest faithful route: drive the flow rule
    // manually through continuous_process by seeding previous flows via a
    // first round that produces them. Instead we verify with the matrix
    // form: x(t+1) = beta M x(t) + (1-beta) x(t-1) for both processes, with
    // x(0) = x(1) = i-hat  (A: no flow moved before round 1)
    // x'(0) = i-hat, x'(1) = j-hat (B: one token moved over (i, j)).
    std::vector<double> a_prev(9, 0.0), a_cur(9, 0.0);
    std::vector<double> b_prev(9, 0.0), b_cur(9, 0.0);
    a_prev[i] = 1.0;
    a_cur[i] = 1.0;
    b_prev[i] = 1.0;
    b_cur[j] = 1.0;

    const auto m = make_dense_diffusion_matrix(g, alpha, speeds);
    contribution_rows rows(g, alpha, speeds, sos_scheme(beta), k);
    // rows holds Q(0); C(t) for t >= 1 uses Q(t-1).
    for (int t = 1; t <= 12; ++t) {
        const double contribution = rows.contribution(i, j); // Q(t-1) difference
        EXPECT_NEAR(a_cur[k] - b_cur[k], contribution, 1e-10) << "t=" << t;

        // Advance both twin processes one SOS round.
        const auto a_next_m = m.multiply(a_cur);
        const auto b_next_m = m.multiply(b_cur);
        std::vector<double> a_next(9), b_next(9);
        for (node_id v = 0; v < 9; ++v) {
            a_next[v] = beta * a_next_m[v] + (1.0 - beta) * a_prev[v];
            b_next[v] = beta * b_next_m[v] + (1.0 - beta) * b_prev[v];
        }
        a_prev = a_cur;
        a_cur = a_next;
        b_prev = b_cur;
        b_cur = b_next;
        rows.advance();
    }
}

TEST(Contribution, DivergenceTermMatchesManualComputation)
{
    const graph g = make_path(4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(4);
    contribution_rows rows(g, alpha, speeds, fos_scheme(), 1);
    // Row of M^0 = e_1: contributions are +-1 around node 1.
    // sum_i max_j (r[i]-r[j])^2: node 0: (0-1)^2=1; node 1: (1-0)^2=1;
    // node 2: (0-1)^2=1; node 3: (0-0)^2=0.
    EXPECT_NEAR(rows.divergence_term(), 3.0, 1e-12);
}

TEST(Contribution, ValidatesAnchor)
{
    const graph g = make_cycle(4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    EXPECT_THROW(contribution_rows(g, alpha, speed_profile::uniform(4),
                                   fos_scheme(), 4),
                 std::invalid_argument);
}

} // namespace
} // namespace dlb
