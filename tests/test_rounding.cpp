// Tests for the rounding framework, including unbiasedness
// (paper Observation 1) and conservation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/alpha.hpp"
#include "core/rounding.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dlb {
namespace {

std::vector<double> antisymmetric_flows(const graph& g, std::uint64_t seed,
                                        double scale = 3.0)
{
    std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()), 0.0);
    xoshiro256ss rng{seed};
    for (node_id v = 0; v < g.num_nodes(); ++v)
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h)
            if (v < g.head(h)) {
                flows[h] = (rng.next_double() * 2.0 - 1.0) * scale;
                flows[g.twin(h)] = -flows[h];
            }
    return flows;
}

/// Net integer outflow per node.
std::vector<std::int64_t> net_outflow(const graph& g,
                                      std::span<const std::int64_t> flows)
{
    std::vector<std::int64_t> net(static_cast<std::size_t>(g.num_nodes()), 0);
    for (node_id v = 0; v < g.num_nodes(); ++v)
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h)
            net[v] += flows[h];
    return net;
}

class RoundingKinds : public ::testing::TestWithParam<rounding_kind> {};

TEST_P(RoundingKinds, AntisymmetryHolds)
{
    const graph g = make_torus_2d(5, 5);
    const auto scheduled = antisymmetric_flows(g, 11);
    std::vector<std::int64_t> flows(scheduled.size());
    round_flows(g, GetParam(), scheduled, 7, 0, flows, default_executor());
    for (half_edge_id h = 0; h < g.num_half_edges(); ++h)
        EXPECT_EQ(flows[h], -flows[g.twin(h)]) << "half-edge " << h;
}

TEST_P(RoundingKinds, ConservationNetSumIsZero)
{
    const graph g = make_random_regular_exact(60, 4, 5);
    const auto scheduled = antisymmetric_flows(g, 13);
    std::vector<std::int64_t> flows(scheduled.size());
    round_flows(g, GetParam(), scheduled, 3, 1, flows, default_executor());
    const auto net = net_outflow(g, flows);
    EXPECT_EQ(std::accumulate(net.begin(), net.end(), std::int64_t{0}), 0);
}

TEST_P(RoundingKinds, IntegerFlowsNearScheduled)
{
    const graph g = make_cycle(30);
    const auto scheduled = antisymmetric_flows(g, 17, 10.0);
    std::vector<std::int64_t> flows(scheduled.size());
    round_flows(g, GetParam(), scheduled, 23, 2, flows, default_executor());
    // Every rounding scheme keeps each edge within 1 token of the scheduled
    // flow (floor/ceil for the randomized ones, nearest for deterministic).
    for (half_edge_id h = 0; h < g.num_half_edges(); ++h)
        EXPECT_LE(std::abs(static_cast<double>(flows[h]) - scheduled[h]), 1.0 + 1e-9)
            << "half-edge " << h;
}

TEST_P(RoundingKinds, ExactIntegersPassThrough)
{
    const graph g = make_cycle(8);
    std::vector<double> scheduled(static_cast<std::size_t>(g.num_half_edges()), 0.0);
    // Set edge (0,1) to exactly 3 tokens.
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h)
        if (g.head(h) == 1) {
            scheduled[h] = 3.0;
            scheduled[g.twin(h)] = -3.0;
        }
    std::vector<std::int64_t> flows(scheduled.size());
    round_flows(g, GetParam(), scheduled, 1, 0, flows, default_executor());
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
        if (g.head(h) == 1) {
            EXPECT_EQ(flows[h], 3);
        }
    }
}

TEST_P(RoundingKinds, ZeroFlowsStayZero)
{
    const graph g = make_torus_2d(3, 3);
    std::vector<double> scheduled(static_cast<std::size_t>(g.num_half_edges()), 0.0);
    std::vector<std::int64_t> flows(scheduled.size(), 99);
    round_flows(g, GetParam(), scheduled, 5, 7, flows, default_executor());
    for (const auto f : flows) EXPECT_EQ(f, 0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RoundingKinds,
                         ::testing::Values(rounding_kind::randomized,
                                           rounding_kind::floor,
                                           rounding_kind::nearest,
                                           rounding_kind::bernoulli_edge),
                         [](const auto& info) {
                             return std::string(to_string(info.param)) == "bernoulli-edge"
                                        ? "bernoulli_edge"
                                        : std::string(to_string(info.param));
                         });

TEST(Rounding, FloorAlwaysRoundsDown)
{
    const graph g = make_path(2);
    std::vector<double> scheduled(2, 0.0);
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
        scheduled[h] = 2.9;
        scheduled[g.twin(h)] = -2.9;
    }
    std::vector<std::int64_t> flows(2);
    round_flows(g, rounding_kind::floor, scheduled, 0, 0, flows, default_executor());
    EXPECT_EQ(flows[g.half_edge_begin(0)], 2);
}

TEST(Rounding, NearestRoundsToClosest)
{
    const graph g = make_path(2);
    std::vector<double> scheduled(2, 0.0);
    scheduled[g.half_edge_begin(0)] = 2.6;
    scheduled[g.twin(g.half_edge_begin(0))] = -2.6;
    std::vector<std::int64_t> flows(2);
    round_flows(g, rounding_kind::nearest, scheduled, 0, 0, flows,
                default_executor());
    EXPECT_EQ(flows[g.half_edge_begin(0)], 3);
}

TEST(Rounding, RandomizedIsDeterministicInSeedAndRound)
{
    const graph g = make_torus_2d(4, 4);
    const auto scheduled = antisymmetric_flows(g, 19);
    std::vector<std::int64_t> a(scheduled.size()), b(scheduled.size()),
        c(scheduled.size());
    round_flows(g, rounding_kind::randomized, scheduled, 5, 9, a,
                default_executor());
    round_flows(g, rounding_kind::randomized, scheduled, 5, 9, b,
                default_executor());
    round_flows(g, rounding_kind::randomized, scheduled, 6, 9, c,
                default_executor());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Rounding, RandomizedIsUnbiasedPerEdge)
{
    // Observation 1: E[Yhat - Y^R] = 0. Estimate the mean rounded flow on a
    // fixed edge over many rounds.
    const graph g = make_star(5); // center 0 with 4 leaves
    std::vector<double> scheduled(static_cast<std::size_t>(g.num_half_edges()), 0.0);
    // Outgoing 0 -> j: 0.25, 0.5, 0.75, 1.5.
    const double values[] = {0.25, 0.5, 0.75, 1.5};
    int idx = 0;
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
        scheduled[h] = values[idx++];
        scheduled[g.twin(h)] = -scheduled[h];
    }

    const int trials = 40000;
    std::vector<double> mean(4, 0.0);
    std::vector<std::int64_t> flows(scheduled.size());
    for (int trial = 0; trial < trials; ++trial) {
        round_flows(g, rounding_kind::randomized, scheduled, 99, trial, flows,
                    default_executor());
        idx = 0;
        for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h)
            mean[idx++] += static_cast<double>(flows[h]);
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(mean[i] / trials, values[i], 0.02) << "edge " << i;
}

TEST(Rounding, RandomizedExcessTokensBoundedByCeil)
{
    // Total sent tokens from a node is between floor-sum and
    // floor-sum + ceil(r).
    const graph g = make_star(7);
    const auto scheduled = [&] {
        std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()), 0.0);
        xoshiro256ss rng{3};
        for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
            flows[h] = rng.next_double() * 2.0; // outgoing only
            flows[g.twin(h)] = -flows[h];
        }
        return flows;
    }();

    double floor_sum = 0.0, excess = 0.0;
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
        floor_sum += std::floor(scheduled[h]);
        excess += scheduled[h] - std::floor(scheduled[h]);
    }

    std::vector<std::int64_t> flows(scheduled.size());
    for (int round = 0; round < 200; ++round) {
        round_flows(g, rounding_kind::randomized, scheduled, 1, round, flows,
                    default_executor());
        std::int64_t sent = 0;
        for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h)
            sent += flows[h];
        EXPECT_GE(sent, static_cast<std::int64_t>(floor_sum));
        EXPECT_LE(sent, static_cast<std::int64_t>(floor_sum + std::ceil(excess)));
    }
}

TEST(Rounding, BernoulliEdgeIsUnbiased)
{
    const graph g = make_path(2);
    std::vector<double> scheduled(2, 0.0);
    scheduled[g.half_edge_begin(0)] = 0.7;
    scheduled[g.twin(g.half_edge_begin(0))] = -0.7;
    std::vector<std::int64_t> flows(2);
    double mean = 0.0;
    const int trials = 40000;
    for (int trial = 0; trial < trials; ++trial) {
        round_flows(g, rounding_kind::bernoulli_edge, scheduled, 4, trial, flows,
                    default_executor());
        mean += static_cast<double>(flows[g.half_edge_begin(0)]);
    }
    EXPECT_NEAR(mean / trials, 0.7, 0.02);
}

TEST(Rounding, SizeMismatchThrows)
{
    const graph g = make_cycle(4);
    std::vector<double> scheduled(3);
    std::vector<std::int64_t> flows(8);
    EXPECT_THROW(round_flows(g, rounding_kind::floor, scheduled, 0, 0, flows,
                             default_executor()),
                 std::invalid_argument);
}

TEST(Rounding, ToStringNames)
{
    EXPECT_EQ(to_string(rounding_kind::randomized), "randomized");
    EXPECT_EQ(to_string(rounding_kind::floor), "floor");
    EXPECT_EQ(to_string(rounding_kind::nearest), "nearest");
    EXPECT_EQ(to_string(rounding_kind::bernoulli_edge), "bernoulli-edge");
}

} // namespace
} // namespace dlb
