// Tests for the Q(t)/M(t) recursions and the Lemma 7 properties.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/second_order_matrix.hpp"
#include "graph/generators.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/spectra.hpp"

namespace dlb {
namespace {

dense_matrix torus_m(node_id w, node_id h)
{
    const graph g = make_torus_2d(w, h);
    return make_dense_diffusion_matrix(
        g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()));
}

TEST(QSequence, InitialAndFirstTerms)
{
    const auto m = torus_m(3, 3);
    const double beta = 1.5;
    q_sequence q(m, beta);
    EXPECT_EQ(q.t(), 0);
    EXPECT_LT(q.current().max_abs_diff(dense_matrix::identity(9)), 1e-15);

    q.advance(); // Q(1) = beta*M
    dense_matrix beta_m = m.linear_combination(0.0, beta, m);
    EXPECT_LT(q.current().max_abs_diff(beta_m), 1e-12);
}

TEST(QSequence, RecursionMatchesDirectComputation)
{
    const auto m = torus_m(3, 4);
    const double beta = 1.7;
    q_sequence q(m, beta);
    // Direct: Q(2) = beta*M*Q(1) + (1-beta)*Q(0).
    q.advance();
    const dense_matrix q1 = q.current();
    q.advance();
    const dense_matrix expected =
        m.multiply(q1).linear_combination(beta, 1.0 - beta,
                                          dense_matrix::identity(12));
    EXPECT_LT(q.current().max_abs_diff(expected), 1e-12);
}

TEST(QSequence, EqualColumnSumsLemma7_3)
{
    const auto m = torus_m(3, 4);
    q_sequence q(m, 1.8);
    for (int t = 0; t < 12; ++t) {
        const auto sums = q_sequence::column_sums(q.current());
        for (std::size_t j = 1; j < sums.size(); ++j)
            EXPECT_NEAR(sums[j], sums[0], 1e-10) << "t=" << t << " col " << j;
        q.advance();
    }
}

TEST(QSequence, EigenvalueEnvelopeLemma7_2)
{
    // All eigenvalues of Q(t) (except the top one) obey
    // |gamma_j(t)| <= (sqrt(beta-1))^t (t+1) when beta = beta_opt(lambda).
    const node_id w = 4, h = 4;
    const auto m = torus_m(w, h);
    const double lambda = torus_2d_lambda(w, h);
    const double beta = beta_opt(lambda);

    q_sequence q(m, beta);
    for (int t = 0; t <= 20; ++t) {
        const auto eigen = jacobi_eigen(q.current().linear_combination(
            0.5, 0.5, q.current().transposed())); // symmetrize (Q is symmetric
                                                  // here; belt and braces)
        const double envelope = q_sequence::eigenvalue_envelope(beta, t);
        // Skip the single top eigenvalue (the stochastic direction).
        for (std::size_t j = 1; j < eigen.values.size(); ++j)
            EXPECT_LE(std::abs(eigen.values[j]), envelope + 1e-9)
                << "t=" << t << " j=" << j;
        q.advance();
    }
}

TEST(QSequence, ScalarRecursionMatchesMatrixEigenvalues)
{
    // gamma_j(t) from the scalar recursion equals the eigenvalue of Q(t)
    // associated with eigenvalue lambda_j of M.
    const auto m = torus_m(3, 3);
    const double beta = 1.6;
    const auto m_eigen = jacobi_eigen(m);

    q_sequence q(m, beta);
    for (int t = 0; t < 8; ++t) {
        // Q(t) v_j = gamma_j(t) v_j for every eigenvector v_j of M.
        for (std::size_t j = 0; j < m_eigen.values.size(); ++j) {
            std::vector<double> v(m_eigen.values.size());
            for (std::size_t i = 0; i < v.size(); ++i) v[i] = m_eigen.vectors(i, j);
            const auto image = q.current().multiply(v);
            const double gamma =
                q_sequence::eigenvalue_recursion(m_eigen.values[j], beta, t);
            for (std::size_t i = 0; i < v.size(); ++i)
                EXPECT_NEAR(image[i], gamma * v[i], 1e-9)
                    << "t=" << t << " j=" << j << " i=" << i;
        }
        q.advance();
    }
}

TEST(QSequence, ValidatesArguments)
{
    EXPECT_THROW(q_sequence(dense_matrix(2, 3), 1.5), std::invalid_argument);
    EXPECT_THROW(q_sequence(dense_matrix::identity(2), 2.0), std::invalid_argument);
    EXPECT_THROW(q_sequence(dense_matrix::identity(2), 0.0), std::invalid_argument);
}

TEST(MSequence, MatchesPowersWhenBetaNearOne)
{
    // With beta -> 1 the SOS recursion degenerates to M(t) = M^t.
    const auto m = torus_m(3, 3);
    m_sequence seq(m, 1.0 - 1e-12);
    dense_matrix power = dense_matrix::identity(9);
    for (int t = 0; t < 6; ++t) {
        EXPECT_LT(seq.current().max_abs_diff(power), 1e-6) << "t=" << t;
        seq.advance();
        power = m.multiply(power);
    }
}

TEST(MSequence, RowsSumToOne)
{
    // M(t) maps load vectors to load vectors conserving totals: columns sum
    // to 1 (homogeneous M is doubly stochastic, so rows too).
    const auto m = torus_m(4, 3);
    m_sequence seq(m, 1.7);
    for (int t = 0; t < 10; ++t) {
        const auto sums = q_sequence::column_sums(seq.current());
        for (const double s : sums) EXPECT_NEAR(s, 1.0, 1e-10) << "t=" << t;
        seq.advance();
    }
}

} // namespace
} // namespace dlb
