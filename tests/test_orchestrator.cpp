// The fault-tolerant lease-queue orchestrator: any number of cooperating
// workers drain one shared queue to a report byte-identical to the
// unsharded run, a kill -9'd worker's lease is taken over and resumed from
// its last checkpoint, and a queue directory can never be shared between
// two different campaigns. The in-process multi-worker test doubles as the
// TSan coverage for the lock/lease paths.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign_executor.hpp"
#include "campaign/orchestrator.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"

namespace dlb {
namespace {

using namespace dlb::campaign;

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DLB_TEST_UNDER_TSAN 1
#endif
#endif
#if !defined(DLB_TEST_UNDER_TSAN) && defined(__SANITIZE_THREAD__)
#define DLB_TEST_UNDER_TSAN 1
#endif

// Long enough that the heaviest scenario writes several checkpoints,
// varied enough to cross the lambda-cache and seed-dependence boundaries.
campaign_spec queue_spec()
{
    campaign_spec spec;
    spec.name = "queue-determinism";
    spec.base.nodes = 36;
    spec.base.rounds = 60;
    spec.base.tokens_per_node = 50;
    spec.axes["topology"] = {"torus", "random_regular"};
    spec.axes["scheme"] = {"fos", "sos"};
    spec.axes["seed"] = {"1", "2"};
    return spec;
}

std::string csv_of(const campaign_result& result)
{
    std::ostringstream out;
    write_csv(out, result);
    return out.str();
}

std::string json_of(const campaign_result& result)
{
    std::ostringstream out;
    write_json(out, result);
    return out.str();
}

class OrchestratorTest : public ::testing::Test {
protected:
    std::string queue_ = ::testing::TempDir() + "dlb_orchestrator_queue";
    std::string ckpt_ = ::testing::TempDir() + "dlb_orchestrator_ckpt";
    void SetUp() override
    {
        std::filesystem::remove_all(queue_);
        std::filesystem::remove_all(ckpt_);
    }
    void TearDown() override
    {
        std::filesystem::remove_all(queue_);
        std::filesystem::remove_all(ckpt_);
    }
    campaign_options queue_options()
    {
        campaign_options options;
        options.queue_dir = queue_;
        options.lease_heartbeat_seconds = 0.05;
        return options;
    }
};

// Three workers inside one process (same flock/lease code paths as three
// processes — every acquisition opens its own descriptor) drain the queue
// concurrently; every worker's merged report is byte-identical to the
// unsharded run's, and together they completed each scenario.
TEST_F(OrchestratorTest, ThreeInProcessWorkersMatchUnshardedByteForByte)
{
    const campaign_spec spec = queue_spec();
    const campaign_result baseline = run_campaign(spec, {});

    std::vector<campaign_result> results(3);
    {
        std::vector<std::thread> workers;
        for (auto& result : results)
            workers.emplace_back([&, this] {
                // Through run_campaign, covering the --queue routing.
                result = run_campaign(spec, queue_options());
            });
        for (auto& worker : workers) worker.join();
    }

    std::int64_t completed = 0;
    for (const campaign_result& result : results) {
        EXPECT_TRUE(result.queue.queue_mode);
        EXPECT_EQ(csv_of(result), csv_of(baseline));
        EXPECT_EQ(json_of(result), json_of(baseline));
        completed += result.queue.completed;
    }
    // Row files are written exactly once per scenario unless a re-lease
    // raced a slow holder; with live workers there are no re-leases, so
    // completions partition the expansion.
    EXPECT_EQ(completed, static_cast<std::int64_t>(expand(spec).size()));
    for (const campaign_result& result : results)
        EXPECT_EQ(result.queue.re_leased, 0);
}

// The crash-recovery contract, end to end: a worker is kill -9'd right
// after its first checkpoint lands, a second worker takes over the dead
// holder's lease, resumes from that checkpoint, and the final report is
// still byte-identical to the unsharded run.
TEST_F(OrchestratorTest, Kill9WorkerIsReLeasedResumedAndBytesStayIdentical)
{
#ifdef DLB_TEST_UNDER_TSAN
    // fork() of a TSan-instrumented multithreaded test binary is not
    // reliable; the in-process worker test above covers the lock/lease
    // paths under TSan, and this test runs in every plain configuration.
    GTEST_SKIP() << "fork-based kill-9 test skipped under TSan";
#else
    const campaign_spec spec = queue_spec();
    campaign_options options = queue_options();
    options.checkpoint_every = 10;
    options.checkpoint_dir = ckpt_;

    const campaign_result baseline = run_campaign(spec, {});

    const pid_t victim = ::fork();
    ASSERT_GE(victim, 0);
    if (victim == 0) {
        // The child dies at a point where a valid checkpoint provably
        // exists — the hook fires after the snapshot file has landed.
        orchestrator_hooks hooks;
        hooks.after_checkpoint = [](std::int64_t, std::int64_t) {
            ::raise(SIGKILL);
        };
        run_queue_campaign(spec, options, hooks);
        ::_exit(0); // unreachable: the first checkpoint kills the child
    }
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // The victim left its lease held and at least one snapshot behind.
    std::size_t snapshots = 0;
    for (const auto& entry : std::filesystem::directory_iterator(ckpt_))
        if (entry.path().extension() == ".ckpt") ++snapshots;
    ASSERT_GE(snapshots, 1u);

    // A surviving worker drains the queue: it must steal the dead holder's
    // lease and resume it from the snapshot rather than recompute.
    std::ostringstream progress;
    options.progress = &progress;
    const campaign_result merged = run_queue_campaign(spec, options);

    EXPECT_GE(merged.queue.re_leased, 1);
    EXPECT_GE(merged.queue.resumed, 1);
    EXPECT_GE(merged.queue.stolen, 1);
    EXPECT_NE(progress.str().find("(re-leased)"), std::string::npos)
        << progress.str();
    EXPECT_NE(progress.str().find("(resumed)"), std::string::npos)
        << progress.str();

    EXPECT_EQ(csv_of(merged), csv_of(baseline));
    EXPECT_EQ(json_of(merged), json_of(baseline));
#endif
}

// A queue directory is stamped with its campaign's identity; joining it
// with a different campaign must fail up front, naming --queue, instead of
// interleaving two sweeps' rows.
TEST_F(OrchestratorTest, JoiningAQueueOfADifferentCampaignThrows)
{
    campaign_spec first = queue_spec();
    first.base.rounds = 20;
    first.axes.erase("scheme");
    run_campaign(first, queue_options()); // creates + drains the queue

    campaign_spec second = first;
    second.base.tokens_per_node = 51; // different spec_hash, same count
    try {
        run_campaign(second, queue_options());
        FAIL() << "a different campaign must be rejected";
    } catch (const std::runtime_error& failure) {
        EXPECT_NE(std::string(failure.what()).find("--queue"),
                  std::string::npos)
            << failure.what();
        EXPECT_NE(std::string(failure.what()).find("spec_hash"),
                  std::string::npos)
            << failure.what();
    }
}

// Completed queues are idempotent: a late (or repeated) worker finds every
// row present, leases nothing, and still returns the full merged report.
TEST_F(OrchestratorTest, RejoiningACompletedQueueReturnsTheMergedReport)
{
    campaign_spec spec = queue_spec();
    spec.base.rounds = 20;
    spec.axes.erase("scheme");
    const campaign_result first = run_campaign(spec, queue_options());
    const campaign_result again = run_campaign(spec, queue_options());
    EXPECT_EQ(again.queue.completed, 0);
    EXPECT_EQ(again.queue.leased, 0);
    EXPECT_EQ(csv_of(again), csv_of(first));
}

TEST_F(OrchestratorTest, OptionConflictsThrowNamingTheFlags)
{
    const campaign_spec spec = queue_spec();

    campaign_options sharded = queue_options();
    sharded.shard_index = 1;
    sharded.shard_count = 2;
    EXPECT_THROW(run_queue_campaign(spec, sharded), std::invalid_argument);

    campaign_options resumed = queue_options();
    resumed.resume_path = "snapshot.ckpt";
    EXPECT_THROW(run_queue_campaign(spec, resumed), std::invalid_argument);

    campaign_options no_beat = queue_options();
    no_beat.lease_heartbeat_seconds = 0.0;
    EXPECT_THROW(run_queue_campaign(spec, no_beat), std::invalid_argument);

    campaign_options no_expiry = queue_options();
    no_expiry.lease_expiry_seconds = -1.0;
    EXPECT_THROW(run_queue_campaign(spec, no_expiry), std::invalid_argument);

    campaign_options half_ckpt = queue_options();
    half_ckpt.checkpoint_every = 10; // without --checkpoint-dir
    EXPECT_THROW(run_queue_campaign(spec, half_ckpt), std::invalid_argument);

    campaign_options no_queue;
    EXPECT_THROW(run_queue_campaign(spec, no_queue), std::invalid_argument);

    // run_scenarios (programmatic campaigns) has no queue mode at all.
    campaign_options queued = queue_options();
    EXPECT_THROW(run_scenarios("adhoc", expand(spec), queued),
                 std::invalid_argument);
}

} // namespace
} // namespace dlb
