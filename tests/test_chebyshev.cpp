// Tests for the Chebyshev semi-iteration extension (Golub-Varga [18], the
// method the paper's SOS is derived from).
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

diffusion_config make_config(const graph& g, scheme_params scheme)
{
    return {&g, make_alpha(g, alpha_policy::max_degree_plus_one),
            speed_profile::uniform(g.num_nodes()), scheme};
}

TEST(Chebyshev, OmegaRecurrenceValues)
{
    const double lambda = 0.9;
    // omega_1 = 1 (warm-up), omega_2 = 1/(1 - l^2/2), then the recurrence.
    EXPECT_DOUBLE_EQ(scheme_beta_for_round(chebyshev_scheme(lambda), 0), 1.0);
    const double omega2 = 1.0 / (1.0 - lambda * lambda / 2.0);
    EXPECT_DOUBLE_EQ(scheme_beta_for_round(chebyshev_scheme(lambda), 1), omega2);
    const double omega3 = 1.0 / (1.0 - 0.25 * lambda * lambda * omega2);
    EXPECT_DOUBLE_EQ(scheme_beta_for_round(chebyshev_scheme(lambda), 2), omega3);
}

TEST(Chebyshev, OmegaConvergesToBetaOpt)
{
    for (const double lambda : {0.5, 0.9, 0.99, 0.999}) {
        const double omega_inf =
            scheme_beta_for_round(chebyshev_scheme(lambda), 4000);
        EXPECT_NEAR(omega_inf, beta_opt(lambda), 1e-6) << "lambda " << lambda;
    }
}

TEST(Chebyshev, OmegaDescendsFromOmega2TowardBetaOpt)
{
    // The classical behavior of the Chebyshev omegas: omega_2 = 1/(1-l^2/2)
    // overshoots beta_opt, and the sequence then decreases monotonically to
    // the SOS fixed point beta_opt = 2/(1+sqrt(1-l^2)) from above.
    const double lambda = 0.99;
    const auto scheme = chebyshev_scheme(lambda);
    const double target = beta_opt(lambda);
    double previous = scheme_beta_for_round(scheme, 1);
    EXPECT_GT(previous, target);
    for (std::int64_t t = 2; t < 200; ++t) {
        const double omega = scheme_beta_for_round(scheme, t);
        EXPECT_LE(omega, previous + 1e-12) << "t=" << t;
        EXPECT_GT(omega, target - 1e-9) << "t=" << t;
        EXPECT_LT(omega, 2.0);
        previous = omega;
    }
}

TEST(Chebyshev, IncrementalStateMatchesPureFunctionBitwise)
{
    // The engines carry the omega recurrence in scheme_beta_state (O(1) per
    // round); it must reproduce the pure O(t) function exactly, including
    // after a reset (hybrid switch restart), for every scheme kind.
    for (const auto scheme :
         {fos_scheme(), sos_scheme(1.7), chebyshev_scheme(0.97)}) {
        scheme_beta_state state(scheme);
        for (std::int64_t t = 0; t < 3000; ++t)
            ASSERT_EQ(state.next(), scheme_beta_for_round(scheme, t)) << t;

        state.reset(scheme);
        EXPECT_EQ(state.next(), scheme_beta_for_round(scheme, 0));
        EXPECT_EQ(state.next(), scheme_beta_for_round(scheme, 1));
    }
}

TEST(Chebyshev, Validation)
{
    EXPECT_THROW(validate_scheme(chebyshev_scheme(1.0)), std::invalid_argument);
    EXPECT_THROW(validate_scheme(chebyshev_scheme(-0.1)), std::invalid_argument);
    EXPECT_NO_THROW(validate_scheme(chebyshev_scheme(0.0)));
}

TEST(Chebyshev, ContinuousConvergesAndConserves)
{
    const graph g = make_torus_2d(8, 8);
    const double lambda = torus_2d_lambda(8, 8);
    continuous_process proc(make_config(g, chebyshev_scheme(lambda)),
                            to_continuous(point_load(64, 0, 6400)));
    proc.run(1000);
    EXPECT_NEAR(proc.total_load(), 6400.0, 1e-6);
    for (const double v : proc.load()) EXPECT_NEAR(v, 100.0, 1e-6);
}

TEST(Chebyshev, AtLeastAsFastAsSosTransient)
{
    // Chebyshev is the round-optimal polynomial method: its potential after
    // t rounds is no worse than SOS with beta_opt (both share the
    // asymptotic rate; Chebyshev wins the transient).
    const node_id side = 16;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const auto initial = to_continuous(point_load(g.num_nodes(), 0,
                                                  g.num_nodes() * 1000LL));

    continuous_process chebyshev(make_config(g, chebyshev_scheme(lambda)), initial);
    continuous_process sos(make_config(g, sos_scheme(beta_opt(lambda))), initial);
    const std::vector<double> ideal(static_cast<std::size_t>(g.num_nodes()),
                                    1000.0);
    for (int t = 0; t < 120; ++t) {
        chebyshev.step();
        sos.step();
    }
    const double chebyshev_phi =
        potential(chebyshev.load(), std::span<const double>(ideal));
    const double sos_phi = potential(sos.load(), std::span<const double>(ideal));
    EXPECT_LE(chebyshev_phi, sos_phi * 1.05);
}

TEST(Chebyshev, MuchFasterThanFos)
{
    const node_id side = 16;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const auto initial = to_continuous(point_load(g.num_nodes(), 0,
                                                  g.num_nodes() * 1000LL));
    continuous_process chebyshev(make_config(g, chebyshev_scheme(lambda)), initial);
    continuous_process fos(make_config(g, fos_scheme()), initial);
    for (int t = 0; t < 150; ++t) {
        chebyshev.step();
        fos.step();
    }
    EXPECT_LT(max_minus_average(chebyshev.load()),
              max_minus_average(fos.load()) / 10.0);
}

TEST(Chebyshev, DiscreteRandomizedRoundingWorks)
{
    const graph g = make_torus_2d(10, 10);
    const double lambda = torus_2d_lambda(10, 10);
    discrete_process proc(make_config(g, chebyshev_scheme(lambda)),
                          point_load(100, 0, 100000),
                          rounding_kind::randomized, 3);
    proc.run(800);
    EXPECT_TRUE(proc.verify_conservation());
    EXPECT_LE(max_minus_average(proc.load()), 30.0);
}

TEST(Chebyshev, SwitchToFosDropsResidual)
{
    const graph g = make_torus_2d(10, 10);
    const double lambda = torus_2d_lambda(10, 10);
    discrete_process proc(make_config(g, chebyshev_scheme(lambda)),
                          point_load(100, 0, 100000),
                          rounding_kind::randomized, 4);
    proc.run(400);
    proc.set_scheme(fos_scheme());
    proc.run(400);
    EXPECT_LE(max_minus_average(proc.load()), 6.0);
}

TEST(Chebyshev, TransientNegativeLoadComparableToSos)
{
    // Chebyshev's omega_t exceeds beta_opt early (omega_2 overshoots, see
    // OmegaDescendsFromOmega2TowardBetaOpt), so its transient dips are
    // somewhat *deeper* than SOS's — but of the same order of magnitude.
    const graph g = make_torus_2d(12, 12);
    const double lambda = torus_2d_lambda(12, 12);
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 1000LL);

    discrete_process cheb(make_config(g, chebyshev_scheme(lambda)), initial,
                          rounding_kind::randomized, 5);
    discrete_process sos(make_config(g, sos_scheme(beta_opt(lambda))), initial,
                         rounding_kind::randomized, 5);
    cheb.run(400);
    sos.run(400);
    EXPECT_LT(cheb.negative_stats().min_transient_load, 0.0);
    EXPECT_LT(sos.negative_stats().min_transient_load, 0.0);
    EXPECT_GE(cheb.negative_stats().min_transient_load,
              3.0 * sos.negative_stats().min_transient_load);
}

} // namespace
} // namespace dlb
