// Tests for the random-matching dimension-exchange baseline [17].
#include <gtest/gtest.h>

#include "core/matching.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

TEST(Matching, ConservesTokens)
{
    const graph g = make_torus_2d(6, 6);
    matching_process proc(g, point_load(36, 0, 36000), 7);
    proc.run(500);
    EXPECT_TRUE(proc.verify_conservation());
}

TEST(Matching, V2StreamConservesAndConverges)
{
    // The counter-based v2 format drives the same algorithm: conservation
    // and convergence hold, the trajectory just comes from another stream.
    const graph g = make_torus_2d(6, 6);
    matching_process proc(g, point_load(36, 0, 36000), 7, rng_version::v2);
    proc.run(500);
    EXPECT_TRUE(proc.verify_conservation());
    EXPECT_LT(max_minus_average(proc.load()), 50.0);

    // Deterministic in (seed, version); mid-trajectory (before both
    // streams reach the common balanced fixed point) it must differ from
    // v1 — a different stream, not a reformatted one.
    matching_process v2_a(g, point_load(36, 0, 36000), 7, rng_version::v2);
    matching_process v2_b(g, point_load(36, 0, 36000), 7, rng_version::v2);
    matching_process v1(g, point_load(36, 0, 36000), 7);
    bool diverged = false;
    for (int t = 0; t < 20; ++t) {
        v2_a.step();
        v2_b.step();
        v1.step();
        for (node_id v = 0; v < g.num_nodes(); ++v) {
            ASSERT_EQ(v2_a.load()[v], v2_b.load()[v]) << t;
            diverged |= v2_a.load()[v] != v1.load()[v];
        }
    }
    EXPECT_TRUE(diverged);
}

TEST(Matching, NeverNegative)
{
    const graph g = make_hypercube(6);
    matching_process proc(g, point_load(64, 0, 6400), 3);
    proc.run(500);
    EXPECT_GE(proc.negative_stats().min_end_of_round_load, 0.0);
}

TEST(Matching, MatchingIsValid)
{
    // Matched pairs per round never exceed n/2.
    const graph g = make_complete(11);
    matching_process proc(g, balanced_load(11, 10), 5);
    for (int t = 0; t < 50; ++t) {
        proc.step();
        EXPECT_LE(proc.last_matching_size(), 5);
        EXPECT_GE(proc.last_matching_size(), 1);
    }
}

TEST(Matching, PairAveragingExact)
{
    // A single edge: one round must split 10 tokens 5/5.
    const graph g = make_path(2);
    matching_process proc(g, std::vector<std::int64_t>{10, 0}, 1);
    proc.step();
    EXPECT_EQ(proc.load()[0], 5);
    EXPECT_EQ(proc.load()[1], 5);
}

TEST(Matching, OddTokenGoesToEitherSide)
{
    const graph g = make_path(2);
    int left_got_extra = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        matching_process proc(g, std::vector<std::int64_t>{11, 0}, seed);
        proc.step();
        EXPECT_EQ(proc.load()[0] + proc.load()[1], 11);
        EXPECT_LE(std::abs(proc.load()[0] - proc.load()[1]), 1);
        if (proc.load()[0] == 6) ++left_got_extra;
    }
    // Roughly fair coin across seeds.
    EXPECT_GT(left_got_extra, 60);
    EXPECT_LT(left_got_extra, 140);
}

TEST(Matching, ConvergesOnTorus)
{
    const graph g = make_torus_2d(8, 8);
    matching_process proc(g, point_load(64, 0, 64000), 11);
    proc.run(4000);
    EXPECT_LE(max_minus_average(proc.load()), 8.0);
}

TEST(Matching, DeterministicInSeed)
{
    const graph g = make_torus_2d(5, 5);
    matching_process a(g, point_load(25, 0, 2500), 9);
    matching_process b(g, point_load(25, 0, 2500), 9);
    matching_process c(g, point_load(25, 0, 2500), 10);
    a.run(10);
    b.run(10);
    c.run(10);
    EXPECT_TRUE(std::equal(a.load().begin(), a.load().end(), b.load().begin()));
    EXPECT_FALSE(std::equal(a.load().begin(), a.load().end(), c.load().begin()));
}

TEST(Matching, SlowerThanDiffusionOnDenseGraphs)
{
    // Diffusion balances with all neighbors at once; matching uses one
    // neighbor per round. On the complete graph diffusion is ~one-shot
    // while matching needs many rounds.
    const graph g = make_complete(16);
    matching_process matching(g, point_load(16, 0, 1600), 13);
    std::int64_t matching_rounds = 0;
    while (max_minus_average(matching.load()) > 5.0 && matching_rounds < 500) {
        matching.step();
        ++matching_rounds;
    }
    EXPECT_GT(matching_rounds, 2);
    EXPECT_LT(matching_rounds, 500);
}

TEST(Matching, BalancedStaysBalanced)
{
    const graph g = make_cycle(12);
    matching_process proc(g, balanced_load(12, 7), 1);
    proc.run(100);
    for (const auto v : proc.load()) EXPECT_EQ(v, 7);
}

TEST(Matching, RejectsBadLoadSize)
{
    const graph g = make_cycle(4);
    EXPECT_THROW(matching_process(g, std::vector<std::int64_t>(3), 1),
                 std::invalid_argument);
}

} // namespace
} // namespace dlb
