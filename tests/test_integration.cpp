// End-to-end integration tests reproducing the paper's Section VI
// phenomena at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/metrics.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/eigen_impact.hpp"
#include "sim/initial_load.hpp"
#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"

namespace dlb {
namespace {

experiment_config torus_config(const graph& g, scheme_params scheme)
{
    experiment_config config;
    config.diffusion = {&g, make_alpha(g, alpha_policy::max_degree_plus_one),
                        speed_profile::uniform(g.num_nodes()), scheme};
    return config;
}

TEST(Integration, SosBeatsFosOnTorusConvergenceTime)
{
    // Figure 1 shape: SOS needs far fewer rounds than FOS to push the
    // potential below a fixed threshold on the torus.
    const node_id side = 24;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const std::int64_t per_node = 1000;
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * per_node);

    // Threshold 100 on potential/n sits far below the initial imbalance yet
    // above the discrete rounding-noise floor of SOS (paper: SOS "will not
    // balance the load completely").
    auto rounds_to_threshold = [&](scheme_params scheme) {
        auto config = torus_config(g, scheme);
        config.rounds = 4000;
        const auto series = run_experiment(config, initial);
        for (std::size_t i = 0; i < series.size(); ++i)
            if (series.potential_over_n[i] < 100.0)
                return series.rounds[i];
        return config.rounds + 1;
    };

    const auto sos_rounds = rounds_to_threshold(sos_scheme(beta_opt(lambda)));
    const auto fos_rounds = rounds_to_threshold(fos_scheme());
    EXPECT_LT(sos_rounds * 3, fos_rounds)
        << "SOS=" << sos_rounds << " FOS=" << fos_rounds;
}

TEST(Integration, SosPlateausAboveFosAndSwitchDropsIt)
{
    // Figures 4/5: SOS alone stalls at a higher remaining imbalance;
    // switching to FOS drops both local and global differences.
    const node_id side = 20;
    const graph g = make_torus_2d(side, side);
    const double beta = beta_opt(torus_2d_lambda(side, side));
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 1000LL);

    auto sos_only = torus_config(g, sos_scheme(beta));
    sos_only.rounds = 1600;
    const auto sos_series = run_experiment(sos_only, initial);

    auto switched = torus_config(g, sos_scheme(beta));
    switched.rounds = 1600;
    switched.switching = switch_policy::at(800);
    const auto switch_series = run_experiment(switched, initial);

    EXPECT_EQ(switch_series.switch_round, 800);
    EXPECT_LT(switch_series.max_minus_average.back(),
              sos_series.max_minus_average.back());
    EXPECT_LT(switch_series.max_local_difference.back(),
              sos_series.max_local_difference.back() + 1e-9);
    // Paper: after switching, the local difference converges to ~4 and
    // max-avg to ~7 on the torus.
    EXPECT_LE(switch_series.max_local_difference.back(), 6.0);
    EXPECT_LE(switch_series.max_minus_average.back(), 9.0);
}

TEST(Integration, InitialLoadHasLimitedImpactFigure2)
{
    // Figure 2: average loads 10/100/1000 give nearly the same remaining
    // imbalance once converged.
    const node_id side = 16;
    const graph g = make_torus_2d(side, side);
    const double beta = beta_opt(torus_2d_lambda(side, side));

    std::vector<double> plateaus;
    for (const std::int64_t per_node : {10LL, 100LL, 1000LL}) {
        auto config = torus_config(g, sos_scheme(beta));
        config.rounds = 2500;
        config.switching = switch_policy::at(1200);
        const auto series = run_experiment(
            config, point_load(g.num_nodes(), 0, g.num_nodes() * per_node));
        plateaus.push_back(series.max_minus_average.back());
    }
    for (const double p : plateaus) EXPECT_LE(p, 10.0);
    EXPECT_LE(std::abs(plateaus[0] - plateaus[2]), 8.0);
}

TEST(Integration, DiscreteTracksIdealizedFigure3and6)
{
    // Figures 3/6: the discrete randomized scheme follows the idealized
    // (continuous) curve until the rounding floor is reached.
    const node_id side = 16;
    const graph g = make_torus_2d(side, side);
    const double beta = beta_opt(torus_2d_lambda(side, side));
    auto config = torus_config(g, sos_scheme(beta));
    config.rounds = 700;
    config.run_continuous_twin = true;
    const auto series =
        run_experiment(config, point_load(g.num_nodes(), 0,
                                          g.num_nodes() * 1000LL));
    // Early rounds: discrete matches continuous within a small deviation.
    for (std::size_t i = 0; i < series.size(); ++i) {
        EXPECT_LT(series.deviation_from_twin[i], 120.0)
            << "round " << series.rounds[i];
    }
    // Idealized curve reaches ~0; the discrete plateau is the difference.
    EXPECT_LE(series.max_minus_average.back(), 15.0);
}

TEST(Integration, HypercubeSosBarelyBeatsFosFigure13)
{
    // Figure 13: on the hypercube the SOS advantage is minor (large gap).
    const graph g = make_hypercube(10);
    const double lambda = hypercube_lambda(10);
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 100LL);

    auto rounds_to_threshold = [&](scheme_params scheme) {
        auto config = torus_config(g, scheme);
        config.rounds = 300;
        const auto series = run_experiment(config, initial);
        for (std::size_t i = 0; i < series.size(); ++i)
            if (series.max_minus_average[i] < 5.0) return series.rounds[i];
        return config.rounds + 1;
    };
    const auto sos_rounds = rounds_to_threshold(sos_scheme(beta_opt(lambda)));
    const auto fos_rounds = rounds_to_threshold(fos_scheme());
    EXPECT_LE(sos_rounds, fos_rounds);
    // "only a limited improvement": within a factor ~2, not the torus's >3x.
    EXPECT_LE(fos_rounds, sos_rounds * 3);
}

TEST(Integration, RandomGraphSosSimilarToFosFigure12)
{
    const graph g = make_random_regular_cm(4096, 12, 3);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const double lambda = compute_lambda(g, alpha, speeds);
    EXPECT_LT(lambda, 0.7); // expander: large gap

    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 100LL);
    auto fos_config = torus_config(g, fos_scheme());
    fos_config.rounds = 120;
    auto sos_config = torus_config(g, sos_scheme(beta_opt(lambda)));
    sos_config.rounds = 120;
    const auto fos_series = run_experiment(fos_config, initial);
    const auto sos_series = run_experiment(sos_config, initial);
    // Both fully converge quickly; remaining imbalance comparable (within 3
    // tokens of each other, paper: "the same for both").
    EXPECT_LE(fos_series.max_minus_average.back(), 8.0);
    EXPECT_LE(sos_series.max_minus_average.back(), 8.0);
    EXPECT_NEAR(fos_series.max_minus_average.back(),
                sos_series.max_minus_average.back(), 4.0);
}

TEST(Integration, EigenImpactLeaderIsSlowestModeFigure7)
{
    // Figure 7/15 shape: there is a mid-convergence window during which the
    // leading coefficient belongs to the slowest non-constant eigenspace
    // (the paper's a_4 block, ranks 1-4) while its magnitude is still far
    // above the rounding-noise floor; afterwards no mode clearly leads.
    const node_id side = 12;
    const graph g = make_torus_2d(side, side);
    const double beta = beta_opt(torus_2d_lambda(side, side));
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()), sos_scheme(beta)};
    discrete_process proc(config, point_load(g.num_nodes(), 0,
                                             g.num_nodes() * 1000LL),
                          rounding_kind::randomized, 12);
    const auto analyzer = eigen_impact_analyzer::for_torus(side, side);

    std::int64_t window_rounds = 0;
    double peak_leading = 0.0;
    for (int t = 1; t <= 120; ++t) {
        proc.step();
        const auto sample = analyzer.analyze(proc.load());
        if (sample.leading_rank <= 4 && sample.max_abs_coefficient > 20.0) {
            ++window_rounds;
            peak_leading = std::max(peak_leading, sample.max_abs_coefficient);
        }
    }
    EXPECT_GE(window_rounds, 5) << "no a_4-led window observed";

    proc.run(2000); // long after convergence: only rounding noise remains
    const auto late = analyzer.analyze(proc.load());
    EXPECT_LT(late.max_abs_coefficient, peak_leading / 2.0);
}

TEST(Integration, WavefrontDiscontinuityOnTorusFigure1)
{
    // Figure 1/9: the max local difference exhibits a bump when the
    // wavefronts collapse at the antipode (~side/2 + side rounds in our
    // scaled torus). We verify the non-monotonicity of the local metric
    // under SOS (it is monotone-ish under FOS).
    const node_id side = 20;
    const graph g = make_torus_2d(side, side);
    const double beta = beta_opt(torus_2d_lambda(side, side));
    auto config = torus_config(g, sos_scheme(beta));
    config.rounds = 300;
    const auto series = run_experiment(
        config, point_load(g.num_nodes(), 0, g.num_nodes() * 1000LL));

    bool bump = false;
    for (std::size_t i = 5; i + 1 < series.size(); ++i)
        if (series.max_minus_average[i + 1] >
            series.max_minus_average[i] * 1.02)
            bump = true;
    EXPECT_TRUE(bump) << "expected non-monotone max-avg under SOS wavefronts";
}

TEST(Integration, ThreadPoolProducesIdenticalFigures)
{
    // The whole experiment pipeline is executor-invariant.
    const graph g = make_torus_2d(10, 10);
    const double beta = beta_opt(torus_2d_lambda(10, 10));
    thread_pool pool(3);

    auto config = torus_config(g, sos_scheme(beta));
    config.rounds = 200;
    const auto serial_series =
        run_experiment(config, point_load(100, 0, 100000));
    config.exec = &pool;
    const auto pooled_series =
        run_experiment(config, point_load(100, 0, 100000));
    ASSERT_EQ(serial_series.size(), pooled_series.size());
    for (std::size_t i = 0; i < serial_series.size(); ++i) {
        EXPECT_EQ(serial_series.max_minus_average[i],
                  pooled_series.max_minus_average[i]);
        EXPECT_EQ(serial_series.potential_over_n[i],
                  pooled_series.potential_over_n[i]);
    }
}

TEST(Integration, HeterogeneousEndToEnd)
{
    // Heterogeneous network balances to speed-proportional loads with SOS +
    // randomized rounding and a switch to FOS.
    const graph g = make_torus_2d(8, 8);
    const auto speeds = speed_profile::bimodal(64, 0.25, 4.0, 31);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const double lambda = compute_lambda(g, alpha, speeds);

    experiment_config config;
    config.diffusion = {&g, alpha, speeds, sos_scheme(beta_opt(lambda))};
    config.rounds = 3000;
    config.switching = switch_policy::at(1000);
    const std::int64_t total = 64000;
    const auto outcome =
        run_experiment_with_final_load(config, point_load(64, 5, total));

    const auto ideal = speeds.ideal_load(static_cast<double>(total));
    for (node_id v = 0; v < 64; ++v)
        EXPECT_NEAR(static_cast<double>(outcome.final_load[v]), ideal[v], 30.0)
            << "node " << v;
}

} // namespace
} // namespace dlb
