// Tests for the Jacobi symmetric eigensolver (the LAPACK substitute).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/alpha.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/speeds.hpp"
#include "graph/generators.hpp"
#include "linalg/jacobi.hpp"
#include "linalg/spectra.hpp"

namespace dlb {
namespace {

TEST(Jacobi, DiagonalMatrix)
{
    dense_matrix a(3, 3);
    a(0, 0) = 3.0;
    a(1, 1) = 1.0;
    a(2, 2) = 2.0;
    const auto eigen = jacobi_eigen(a);
    ASSERT_EQ(eigen.values.size(), 3u);
    EXPECT_DOUBLE_EQ(eigen.values[0], 3.0);
    EXPECT_DOUBLE_EQ(eigen.values[1], 2.0);
    EXPECT_DOUBLE_EQ(eigen.values[2], 1.0);
}

TEST(Jacobi, TwoByTwoAnalytic)
{
    dense_matrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 2.0;
    const auto eigen = jacobi_eigen(a);
    EXPECT_NEAR(eigen.values[0], 3.0, 1e-12);
    EXPECT_NEAR(eigen.values[1], 1.0, 1e-12);
}

TEST(Jacobi, RejectsAsymmetric)
{
    dense_matrix a(2, 2);
    a(0, 1) = 1.0;
    EXPECT_THROW(jacobi_eigen(a), std::invalid_argument);
}

TEST(Jacobi, RejectsNonSquare)
{
    EXPECT_THROW(jacobi_eigen(dense_matrix(2, 3)), std::invalid_argument);
}

TEST(Jacobi, EigenvectorsAreOrthonormal)
{
    // Random-ish symmetric matrix.
    const std::size_t n = 12;
    dense_matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            const double value = std::sin(static_cast<double>(i * 31 + j * 17));
            a(i, j) = value;
            a(j, i) = value;
        }
    const auto eigen = jacobi_eigen(a);
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            double inner = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                inner += eigen.vectors(i, p) * eigen.vectors(i, q);
            EXPECT_NEAR(inner, p == q ? 1.0 : 0.0, 1e-9);
        }
    }
}

TEST(Jacobi, ReconstructsMatrix)
{
    const std::size_t n = 8;
    dense_matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            const double value = 1.0 / (1.0 + static_cast<double>(i + j));
            a(i, j) = value;
            a(j, i) = value;
        }
    const auto eigen = jacobi_eigen(a);
    // A == V diag(w) V^T.
    dense_matrix reconstructed(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                acc += eigen.vectors(i, k) * eigen.values[k] * eigen.vectors(j, k);
            reconstructed(i, j) = acc;
        }
    EXPECT_LT(reconstructed.max_abs_diff(a), 1e-9);
}

TEST(Jacobi, CycleDiffusionMatrixMatchesAnalyticSpectrum)
{
    const node_id n = 16;
    const graph g = make_cycle(n);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto m =
        make_dense_diffusion_matrix(g, alpha, speed_profile::uniform(n));
    const auto eigen = jacobi_eigen(m);
    const auto analytic = cycle_spectrum(n);
    ASSERT_EQ(eigen.values.size(), analytic.size());
    for (std::size_t i = 0; i < analytic.size(); ++i)
        EXPECT_NEAR(eigen.values[i], analytic[i], 1e-10) << "index " << i;
}

TEST(Jacobi, SmallTorusMatchesAnalyticSpectrum)
{
    const graph g = make_torus_2d(4, 5);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto m = make_dense_diffusion_matrix(
        g, alpha, speed_profile::uniform(g.num_nodes()));
    const auto eigen = jacobi_eigen(m);
    const auto analytic = torus_2d_spectrum(4, 5);
    ASSERT_EQ(eigen.values.size(), analytic.size());
    for (std::size_t i = 0; i < analytic.size(); ++i)
        EXPECT_NEAR(eigen.values[i], analytic[i], 1e-10) << "index " << i;
}

} // namespace
} // namespace dlb
