// Tests for the CSR graph: construction, adjacency, twin half-edges.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"

namespace dlb {
namespace {

graph triangle()
{
    const std::vector<edge> edges{{0, 1}, {1, 2}, {0, 2}};
    return graph::from_edge_list(3, edges);
}

TEST(Graph, EmptyGraph)
{
    const graph g = graph::from_edge_list(0, {});
    EXPECT_EQ(g.num_nodes(), 0);
    EXPECT_EQ(g.num_edges(), 0);
    EXPECT_EQ(g.num_half_edges(), 0);
}

TEST(Graph, IsolatedNodes)
{
    const graph g = graph::from_edge_list(5, {});
    EXPECT_EQ(g.num_nodes(), 5);
    EXPECT_EQ(g.num_edges(), 0);
    for (node_id v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0);
    EXPECT_EQ(g.min_degree(), 0);
    EXPECT_EQ(g.max_degree(), 0);
}

TEST(Graph, TriangleBasics)
{
    const graph g = triangle();
    EXPECT_EQ(g.num_nodes(), 3);
    EXPECT_EQ(g.num_edges(), 3);
    EXPECT_EQ(g.num_half_edges(), 6);
    for (node_id v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
    EXPECT_EQ(g.average_degree(), 2.0);
}

TEST(Graph, NeighborsAreSorted)
{
    const std::vector<edge> edges{{0, 3}, {0, 1}, {0, 2}};
    const graph g = graph::from_edge_list(4, edges);
    const auto nbrs = g.neighbors(0);
    ASSERT_EQ(nbrs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, TwinInvolution)
{
    const graph g = triangle();
    for (half_edge_id h = 0; h < g.num_half_edges(); ++h) {
        const half_edge_id tw = g.twin(h);
        EXPECT_NE(tw, h);
        EXPECT_EQ(g.twin(tw), h);
    }
}

TEST(Graph, TwinConnectsEndpoints)
{
    const graph g = triangle();
    for (node_id v = 0; v < g.num_nodes(); ++v) {
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h) {
            const node_id u = g.head(h);
            const half_edge_id tw = g.twin(h);
            EXPECT_EQ(g.head(tw), v);
            // The twin lives in u's slice.
            EXPECT_GE(tw, g.half_edge_begin(u));
            EXPECT_LT(tw, g.half_edge_end(u));
        }
    }
}

TEST(Graph, HasEdge)
{
    const graph g = triangle();
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(2, 0));
    EXPECT_FALSE(g.has_edge(0, 0));
    EXPECT_FALSE(g.has_edge(0, 3));  // out of range
    EXPECT_FALSE(g.has_edge(-1, 0)); // out of range
}

TEST(Graph, EdgeListRoundTrip)
{
    const std::vector<edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
    const graph g = graph::from_edge_list(4, edges);
    auto out = g.edge_list();
    std::vector<edge> expected(edges);
    std::sort(expected.begin(), expected.end());
    std::sort(out.begin(), out.end());
    EXPECT_EQ(out, expected);
}

TEST(Graph, RejectsSelfLoop)
{
    const std::vector<edge> edges{{0, 0}};
    EXPECT_THROW(graph::from_edge_list(2, edges), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge)
{
    const std::vector<edge> edges{{0, 1}, {1, 0}};
    EXPECT_THROW(graph::from_edge_list(2, edges), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint)
{
    const std::vector<edge> edges{{0, 5}};
    EXPECT_THROW(graph::from_edge_list(3, edges), std::invalid_argument);
}

TEST(Graph, DedupDropsSelfLoopsAndDuplicates)
{
    std::vector<edge> edges{{0, 1}, {1, 0}, {0, 0}, {1, 2}, {1, 2}};
    const graph g = graph::from_edge_list_dedup(3, std::move(edges));
    EXPECT_EQ(g.num_edges(), 2);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DegreeExtremes)
{
    // Star: center degree 4, leaves degree 1.
    const std::vector<edge> edges{{0, 1}, {0, 2}, {0, 3}, {0, 4}};
    const graph g = graph::from_edge_list(5, edges);
    EXPECT_EQ(g.max_degree(), 4);
    EXPECT_EQ(g.min_degree(), 1);
}

TEST(Graph, HalfEdgeRangesPartitionAdjacency)
{
    const graph g = triangle();
    half_edge_id expected_begin = 0;
    for (node_id v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(g.half_edge_begin(v), expected_begin);
        expected_begin = g.half_edge_end(v);
    }
    EXPECT_EQ(expected_begin, g.num_half_edges());
}

TEST(Graph, CanonicalEdgeViewCoversEveryEdgeOnce)
{
    const std::vector<edge> edges{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {1, 3}};
    const graph g = graph::from_edge_list(4, edges);

    const auto canonical = g.canonical_half_edges();
    ASSERT_EQ(static_cast<std::int64_t>(canonical.size()), g.num_edges());

    // Ascending, canonical (tail < head), and twin-closed: the canonical
    // list plus its twins is exactly the half-edge set.
    std::vector<bool> covered(static_cast<std::size_t>(g.num_half_edges()), false);
    half_edge_id previous = -1;
    for (const half_edge_id h : canonical) {
        EXPECT_GT(h, previous);
        previous = h;
        EXPECT_TRUE(g.is_canonical(h));
        EXPECT_FALSE(g.is_canonical(g.twin(h)));
        EXPECT_LT(g.tail(h), g.head(h));
        EXPECT_FALSE(covered[h]);
        EXPECT_FALSE(covered[g.twin(h)]);
        covered[h] = covered[g.twin(h)] = true;
    }
    for (const bool c : covered) EXPECT_TRUE(c);

    // tail() inverts the CSR slices.
    for (node_id v = 0; v < g.num_nodes(); ++v)
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h)
            EXPECT_EQ(g.tail(h), v);
}

} // namespace
} // namespace dlb
