// Direct numerical verification of the paper's central identities:
//
//  * Lemma 2:  x^D_k(t) - x^C_k(t) =
//        sum_{s=1..t} sum_{{i,j} in E} e_{i,j}(t-s) * C_{k,i->j}(s)
//    for any rounding scheme, where e_{i,j}(s) = Yhat_{i,j}(s) - y^D_{i,j}(s)
//    is the rounding error of round s and C are the contributions.
//  * Observation 3 scale: Upsilon for alpha = 1/(gamma d) on regular graphs.
//  * Theorem 8's setup: the deterministic (nearest) rounding deviation stays
//    within the d*sqrt(n*s_max)/(1-lambda) envelope.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/contribution.hpp"
#include "core/divergence.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

/// Replays a discrete process for `rounds` rounds, recording the rounding
/// error e_{i,j}(s) on every canonical half-edge per round, then checks the
/// Lemma 2 telescoping identity for every observer node k.
void check_lemma2(const graph& g, scheme_params scheme, rounding_kind rounding,
                  const std::vector<std::int64_t>& initial, int rounds,
                  double tolerance)
{
    const diffusion_config config{&g,
                                  make_alpha(g, alpha_policy::max_degree_plus_one),
                                  speed_profile::uniform(g.num_nodes()), scheme};

    discrete_process discrete(config, initial, rounding, 99);
    continuous_process continuous(config, to_continuous(initial));

    // errors[s][h] = Yhat_h(s) - y^D_h(s) for canonical half-edges.
    std::vector<std::vector<double>> errors;
    for (int s = 0; s < rounds; ++s) {
        discrete.step();
        continuous.step();
        const auto scheduled = discrete.last_scheduled_flows();
        const auto rounded = discrete.previous_flows();
        std::vector<double> e(static_cast<std::size_t>(g.num_half_edges()), 0.0);
        for (half_edge_id h = 0; h < g.num_half_edges(); ++h)
            e[h] = scheduled[h] - static_cast<double>(rounded[h]);
        errors.push_back(std::move(e));
    }

    // Contribution rows. In the Lemma 2 sum, the s = 1 term pairs the error
    // of the LAST round with the identity (an error injected in round t-1
    // propagates through zero further applications of the dynamics), so
    // C(s) corresponds to M^{s-1} for FOS and Q(s-1) for SOS (Lemma 6):
    // the row stream is used *before* advancing for both schemes.
    for (node_id k = 0; k < g.num_nodes(); ++k) {
        contribution_rows rows(g, config.alpha, config.speeds, scheme, k);
        double predicted = 0.0;
        for (int s = 1; s <= rounds; ++s) {
            // rows.row() holds M^{s-1} (FOS) or Q(s-1) (SOS).
            const auto& e = errors[static_cast<std::size_t>(rounds - s)];
            for (node_id i = 0; i < g.num_nodes(); ++i)
                for (half_edge_id h = g.half_edge_begin(i);
                     h < g.half_edge_end(i); ++h) {
                    const node_id j = g.head(h);
                    if (i < j) // canonical orientation: each edge once
                        predicted += e[h] * rows.contribution(i, j);
                }
            rows.advance();
        }
        const double actual = static_cast<double>(discrete.load()[k]) -
                              continuous.load()[k];
        EXPECT_NEAR(actual, predicted, tolerance) << "observer " << k;
    }
}

TEST(Lemma2, FosFloorRoundingOnCycle)
{
    check_lemma2(make_cycle(8), fos_scheme(), rounding_kind::floor,
                 point_load(8, 0, 83), 12, 1e-8);
}

TEST(Lemma2, FosRandomizedRoundingOnTorus)
{
    check_lemma2(make_torus_2d(3, 4), fos_scheme(), rounding_kind::randomized,
                 point_load(12, 0, 997), 10, 1e-8);
}

TEST(Lemma2, FosNearestRoundingOnStar)
{
    check_lemma2(make_star(7), fos_scheme(), rounding_kind::nearest,
                 random_load(7, 153, 3), 15, 1e-8);
}

TEST(Lemma2, SosRandomizedRoundingOnTorus)
{
    const double beta = beta_opt(torus_2d_lambda(3, 4));
    check_lemma2(make_torus_2d(3, 4), sos_scheme(beta),
                 rounding_kind::randomized, point_load(12, 0, 1201), 10, 1e-7);
}

TEST(Lemma2, SosFloorRoundingOnHypercube)
{
    const double beta = beta_opt(hypercube_lambda(3));
    check_lemma2(make_hypercube(3), sos_scheme(beta), rounding_kind::floor,
                 point_load(8, 0, 511), 12, 1e-7);
}

TEST(Lemma2, SosBernoulliRoundingOnCycle)
{
    check_lemma2(make_cycle(6), sos_scheme(1.4), rounding_kind::bernoulli_edge,
                 random_load(6, 300, 9), 14, 1e-7);
}

TEST(Observation3, UpsilonScaleForUniformAlpha)
{
    // alpha = 1/(gamma d) on a d-regular graph:
    // Upsilon = O(sqrt(gamma d / (2 - 2/gamma))). Check the measured value
    // sits within a small constant of the formula on hypercubes.
    for (const int dim : {3, 4, 5}) {
        const graph g = make_hypercube(dim);
        const double gamma = 2.0;
        const auto alpha = make_alpha(g, alpha_policy::uniform_gamma_d, gamma);
        const auto result = refined_local_divergence(
            g, alpha, speed_profile::uniform(g.num_nodes()), fos_scheme(), 0);
        const double formula = std::sqrt(gamma * dim / (2.0 - 2.0 / gamma));
        EXPECT_GT(result.upsilon, 0.3 * formula) << "dim " << dim;
        EXPECT_LT(result.upsilon, 4.0 * formula) << "dim " << dim;
    }
}

TEST(Theorem8, DeterministicSosDeviationEnvelope)
{
    // |x^D(t) - x^SOS(t)| = O(d sqrt(n s_max) / (1-lambda)) for any
    // floor/ceiling rounding. Generously check the nearest-rounding run.
    const node_id side = 8;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()), sos_scheme(beta_opt(lambda))};

    discrete_process discrete(config, point_load(64, 0, 64000),
                              rounding_kind::nearest, 5);
    continuous_process continuous(config, to_continuous(point_load(64, 0, 64000)));
    double worst = 0.0;
    for (int t = 0; t < 500; ++t) {
        discrete.step();
        continuous.step();
        worst = std::max(worst, max_deviation(discrete.load(), continuous.load()));
    }
    const double envelope = 4.0 * std::sqrt(64.0) / (1.0 - lambda);
    EXPECT_LT(worst, envelope);
    EXPECT_GT(worst, 0.0); // rounding does perturb the trajectory
}

TEST(Lemma1, GeneralizedLinearityWithSpeeds)
{
    // Definition 4 linearity for the heterogeneous SOS operator.
    const graph g = make_torus_2d(3, 3);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const speed_profile speeds =
        speed_profile::from_vector({1, 2, 3, 1, 2, 3, 1, 2, 3});
    const double beta = 1.6;

    auto flows_for = [&](const std::vector<double>& x,
                         const std::vector<double>& y) {
        // Heterogeneous rule consumes x/s.
        std::vector<double> x_over_s(9);
        for (node_id v = 0; v < 9; ++v) x_over_s[v] = x[v] / speeds.speed(v);
        std::vector<double> out(static_cast<std::size_t>(g.num_half_edges()));
        scheduled_flows(g, alpha, sos_scheme(beta), 5, x_over_s, y, out,
                        default_executor());
        return out;
    };

    xoshiro256ss rng{31};
    std::vector<double> x1(9), x2(9);
    for (auto& v : x1) v = rng.next_double() * 10;
    for (auto& v : x2) v = rng.next_double() * 10;
    std::vector<double> y1(static_cast<std::size_t>(g.num_half_edges()), 0.0);
    std::vector<double> y2(y1.size(), 0.0);
    for (half_edge_id h = 0; h < g.num_half_edges(); ++h) {
        const half_edge_id tw = g.twin(h);
        if (h < tw) {
            y1[h] = rng.next_double() - 0.5;
            y1[tw] = -y1[h];
            y2[h] = rng.next_double() - 0.5;
            y2[tw] = -y2[h];
        }
    }

    const double a = 1.5, b = -0.75;
    std::vector<double> x_combo(9), y_combo(y1.size());
    for (std::size_t i = 0; i < 9; ++i) x_combo[i] = a * x1[i] + b * x2[i];
    for (std::size_t i = 0; i < y_combo.size(); ++i)
        y_combo[i] = a * y1[i] + b * y2[i];

    const auto f1 = flows_for(x1, y1);
    const auto f2 = flows_for(x2, y2);
    const auto combo = flows_for(x_combo, y_combo);
    for (std::size_t i = 0; i < combo.size(); ++i)
        EXPECT_NEAR(combo[i], a * f1[i] + b * f2[i], 1e-10);
}

} // namespace
} // namespace dlb
