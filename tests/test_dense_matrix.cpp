// Tests for dense matrix arithmetic and vector helpers.
#include <gtest/gtest.h>

#include "linalg/dense_matrix.hpp"

namespace dlb {
namespace {

TEST(DenseMatrix, IdentityMultiplication)
{
    dense_matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    const auto id = dense_matrix::identity(2);
    EXPECT_EQ(a.multiply(id).max_abs_diff(a), 0.0);
    EXPECT_EQ(id.multiply(a).max_abs_diff(a), 0.0);
}

TEST(DenseMatrix, KnownProduct)
{
    dense_matrix a(2, 3), b(3, 2);
    // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
    double value = 1.0;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j) a(i, j) = value++;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j) b(i, j) = value++;
    const auto c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(DenseMatrix, ShapeMismatchThrows)
{
    dense_matrix a(2, 3), b(2, 3);
    EXPECT_THROW(a.multiply(b), std::invalid_argument);
    EXPECT_THROW(a.linear_combination(1.0, 1.0, dense_matrix(3, 3)),
                 std::invalid_argument);
}

TEST(DenseMatrix, VectorMultiply)
{
    dense_matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    const std::vector<double> x{1.0, -1.0};
    const auto y = a.multiply(x);
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    const auto yt = a.multiply_transposed(x);
    EXPECT_DOUBLE_EQ(yt[0], -2.0);
    EXPECT_DOUBLE_EQ(yt[1], -2.0);
}

TEST(DenseMatrix, TransposeAndLinearCombination)
{
    dense_matrix a(2, 3);
    a(0, 2) = 5.0;
    const auto at = a.transposed();
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_EQ(at.cols(), 2u);
    EXPECT_DOUBLE_EQ(at(2, 0), 5.0);

    dense_matrix b(2, 2), c(2, 2);
    b(0, 0) = 1.0;
    c(0, 0) = 2.0;
    const auto combo = b.linear_combination(3.0, -1.0, c);
    EXPECT_DOUBLE_EQ(combo(0, 0), 1.0);
}

TEST(DenseMatrix, Norms)
{
    dense_matrix a(2, 2);
    a(0, 0) = 3.0;
    a(1, 1) = -4.0;
    EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(VectorOps, DotNormAxpyScale)
{
    std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
    axpy(2.0, b, a); // a += 2b
    EXPECT_DOUBLE_EQ(a[0], 9.0);
    EXPECT_DOUBLE_EQ(a[2], 15.0);
    scale(a, 0.5);
    EXPECT_DOUBLE_EQ(a[0], 4.5);
}

TEST(DenseMatrix, RowAccess)
{
    dense_matrix a(2, 3);
    a(1, 0) = 7.0;
    const auto row = a.row(1);
    EXPECT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[0], 7.0);
    a.row(0)[2] = 9.0;
    EXPECT_DOUBLE_EQ(a(0, 2), 9.0);
}

} // namespace
} // namespace dlb
