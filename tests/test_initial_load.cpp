// Tests for initial load distributions.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/initial_load.hpp"

namespace dlb {
namespace {

TEST(InitialLoad, PointLoad)
{
    const auto load = point_load(5, 2, 100);
    EXPECT_EQ(load.size(), 5u);
    EXPECT_EQ(load[2], 100);
    EXPECT_EQ(std::accumulate(load.begin(), load.end(), std::int64_t{0}), 100);
    EXPECT_THROW(point_load(5, 5, 1), std::invalid_argument);
    EXPECT_THROW(point_load(5, 0, -1), std::invalid_argument);
}

TEST(InitialLoad, BalancedLoad)
{
    const auto load = balanced_load(4, 7);
    for (const auto v : load) EXPECT_EQ(v, 7);
    EXPECT_THROW(balanced_load(4, -1), std::invalid_argument);
}

TEST(InitialLoad, RandomLoadTotalAndDeterminism)
{
    const auto a = random_load(10, 1000, 3);
    const auto b = random_load(10, 1000, 3);
    const auto c = random_load(10, 1000, 4);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), std::int64_t{0}), 1000);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(InitialLoad, RandomLoadRoughlyUniform)
{
    const auto load = random_load(10, 100000, 5);
    for (const auto v : load) EXPECT_NEAR(static_cast<double>(v), 10000.0, 500.0);
}

TEST(InitialLoad, UniformRange)
{
    const auto load = uniform_range_load(1000, 5, 9, 2);
    for (const auto v : load) {
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 9);
    }
    EXPECT_THROW(uniform_range_load(5, 3, 2, 1), std::invalid_argument);
}

TEST(InitialLoad, ProportionalMatchesSpeedsExactly)
{
    const std::vector<double> speeds{1.0, 2.0, 1.0};
    const auto load = proportional_load(speeds, 400);
    EXPECT_EQ(load[0], 100);
    EXPECT_EQ(load[1], 200);
    EXPECT_EQ(load[2], 100);
}

TEST(InitialLoad, ProportionalDistributesRemainder)
{
    const std::vector<double> speeds{1.0, 1.0, 1.0};
    const auto load = proportional_load(speeds, 100);
    EXPECT_EQ(std::accumulate(load.begin(), load.end(), std::int64_t{0}), 100);
    for (const auto v : load) EXPECT_NEAR(static_cast<double>(v), 33.3, 1.0);
}

TEST(InitialLoad, ToContinuous)
{
    const auto load = to_continuous({1, 2, 3});
    EXPECT_DOUBLE_EQ(load[0], 1.0);
    EXPECT_DOUBLE_EQ(load[2], 3.0);
}

} // namespace
} // namespace dlb
