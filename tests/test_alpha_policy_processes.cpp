// Process-level coverage for the alpha = 1/(gamma*d) policy (Observation 3)
// and for graph families not in the main property sweep (Erdos-Renyi, grid).
#include <gtest/gtest.h>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, UniformAlphaFosConvergesAndConserves)
{
    const double gamma = GetParam();
    const graph g = make_hypercube(6);
    const auto alpha = make_alpha(g, alpha_policy::uniform_gamma_d, gamma);
    ASSERT_TRUE(alpha_is_valid(g, alpha));
    const diffusion_config config{&g, alpha, speed_profile::uniform(g.num_nodes()),
                                  fos_scheme()};
    discrete_process proc(config, point_load(64, 0, 6400),
                          rounding_kind::randomized, 77);
    proc.run(1500);
    EXPECT_TRUE(proc.verify_conservation());
    EXPECT_LE(max_minus_average(proc.load()), 8.0) << "gamma " << gamma;
}

TEST_P(GammaSweep, LambdaShrinksWithSmallerGamma)
{
    // Larger gamma = lazier chain = larger lambda = slower convergence.
    const double gamma = GetParam();
    if (gamma >= 8.0) GTEST_SKIP() << "comparison uses the next smaller value";
    const graph g = make_cycle(24);
    const auto speeds = speed_profile::uniform(24);
    const double lambda_here =
        compute_lambda(g, make_alpha(g, alpha_policy::uniform_gamma_d, gamma),
                       speeds);
    const double lambda_lazier = compute_lambda(
        g, make_alpha(g, alpha_policy::uniform_gamma_d, gamma * 2.0), speeds);
    EXPECT_LT(lambda_here, lambda_lazier + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(1.5, 2.0, 4.0, 8.0),
                         [](const auto& info) {
                             return "gamma" +
                                    std::to_string(static_cast<int>(
                                        info.param * 10));
                         });

TEST(AlphaPolicies, BothPoliciesReachTheSameFixedPoint)
{
    const graph g = make_torus_2d(6, 6);
    const auto speeds = speed_profile::uniform(36);
    for (const auto policy :
         {alpha_policy::max_degree_plus_one, alpha_policy::uniform_gamma_d}) {
        const diffusion_config config{&g, make_alpha(g, policy, 2.0), speeds,
                                      fos_scheme()};
        continuous_process proc(config, to_continuous(point_load(36, 0, 3600)));
        proc.run(3000);
        for (const double v : proc.load()) EXPECT_NEAR(v, 100.0, 1e-6);
    }
}

TEST(ErdosRenyiProcess, SosBalancesSupercriticalGraph)
{
    // G(n, p) above the connectivity threshold behaves like an expander.
    const node_id n = 800;
    const graph g = make_erdos_renyi(n, 0.02, 3);
    ASSERT_TRUE(is_connected(g)); // p >> log(n)/n
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(n);
    const double lambda = compute_lambda(g, alpha, speeds);
    const diffusion_config config{&g, alpha, speeds,
                                  sos_scheme(beta_opt(lambda))};
    discrete_process proc(config, point_load(n, 0, n * 100LL),
                          rounding_kind::randomized, 13);
    proc.run(300);
    EXPECT_TRUE(proc.verify_conservation());
    EXPECT_LE(max_minus_average(proc.load()), 15.0);
}

TEST(GridProcess, OpenBoundariesBalanceSlowerThanTorus)
{
    // The grid's spectral gap is ~4x smaller than the torus's (open vs
    // periodic boundaries), so FOS needs visibly more rounds.
    const node_id side = 12;
    const graph grid = make_grid_2d(side, side);
    const graph torus = make_torus_2d(side, side);
    const auto speeds = speed_profile::uniform(side * side);

    auto rounds_to_balance = [&](const graph& g) {
        const diffusion_config config{
            &g, make_alpha(g, alpha_policy::max_degree_plus_one), speeds,
            fos_scheme()};
        discrete_process proc(config,
                              point_load(g.num_nodes(), 0, g.num_nodes() * 100LL),
                              rounding_kind::randomized, 5);
        std::int64_t t = 0;
        while (max_minus_average(proc.load()) > 10.0 && t < 20000) {
            proc.step();
            ++t;
        }
        return t;
    };
    const auto grid_rounds = rounds_to_balance(grid);
    const auto torus_rounds = rounds_to_balance(torus);
    EXPECT_GT(grid_rounds, torus_rounds);
    EXPECT_LT(grid_rounds, 20000);
}

TEST(GridProcess, CornerLoadBalances)
{
    // Corner nodes have degree 2: alpha = 1/(max(2, 3)+1) on corner edges;
    // the non-uniform alpha must still conserve and converge.
    const graph g = make_grid_2d(8, 8);
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(64), fos_scheme()};
    discrete_process proc(config, point_load(64, 0, 6400),
                          rounding_kind::randomized, 21);
    proc.run(4000);
    EXPECT_TRUE(proc.verify_conservation());
    EXPECT_LE(max_minus_average(proc.load()), 8.0);
}

} // namespace
} // namespace dlb
