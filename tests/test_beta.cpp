// Tests for beta_opt and the Table I reference values.
#include <gtest/gtest.h>

#include <cmath>

#include "core/beta.hpp"

namespace dlb {
namespace {

TEST(Beta, KnownValues)
{
    EXPECT_DOUBLE_EQ(beta_opt(0.0), 1.0);
    EXPECT_NEAR(beta_opt(std::sqrt(3.0) / 2.0), 2.0 / 1.5, 1e-12);
}

TEST(Beta, MonotoneIncreasingInLambda)
{
    double previous = 0.0;
    for (double lambda = 0.0; lambda < 0.9999; lambda += 0.01) {
        const double beta = beta_opt(lambda);
        EXPECT_GT(beta, previous);
        previous = beta;
    }
}

TEST(Beta, RangeIsOneToTwo)
{
    EXPECT_DOUBLE_EQ(beta_opt(0.0), 1.0);
    EXPECT_LT(beta_opt(0.999999), 2.0);
    EXPECT_GT(beta_opt(0.999999), 1.99);
}

TEST(Beta, RejectsBadLambda)
{
    EXPECT_THROW(beta_opt(-0.1), std::invalid_argument);
    EXPECT_THROW(beta_opt(1.0), std::invalid_argument);
    EXPECT_THROW(beta_opt(1.5), std::invalid_argument);
}

TEST(Beta, LambdaForBetaInverts)
{
    for (const double lambda : {0.1, 0.5, 0.9, 0.99, 0.9999}) {
        EXPECT_NEAR(lambda_for_beta(beta_opt(lambda)), lambda, 1e-9);
    }
}

TEST(Beta, LambdaForBetaValidation)
{
    EXPECT_THROW(lambda_for_beta(0.9), std::invalid_argument);
    EXPECT_THROW(lambda_for_beta(2.0), std::invalid_argument);
}

TEST(Beta, ConvergenceFactor)
{
    EXPECT_DOUBLE_EQ(sos_convergence_factor(1.0), 0.0);
    EXPECT_NEAR(sos_convergence_factor(1.81), std::sqrt(0.81), 1e-12);
    EXPECT_THROW(sos_convergence_factor(2.5), std::invalid_argument);
}

TEST(Beta, Table1RowsArePresent)
{
    const auto rows = table1_reference();
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_STREQ(rows[0].name, "torus-1000x1000");
    EXPECT_EQ(rows[0].num_nodes, 1000000);
    EXPECT_NEAR(rows[0].beta, 1.9920836447, 1e-12);
    EXPECT_NEAR(rows[4].beta, 1.4026054847, 1e-12);
}

TEST(Beta, Table1BetasAreConsistentWithLambdaInversion)
{
    // Every Table I beta must map back to a lambda in (0, 1).
    for (const auto& row : table1_reference()) {
        const double lambda = lambda_for_beta(row.beta);
        EXPECT_GT(lambda, 0.0) << row.name;
        EXPECT_LT(lambda, 1.0) << row.name;
        EXPECT_NEAR(beta_opt(lambda), row.beta, 1e-9) << row.name;
    }
}

TEST(Beta, SosFasterThanFosForLargeLambda)
{
    // Convergence-time proxy: FOS ~ 1/(1-lambda), SOS ~ 1/sqrt(1-lambda).
    const double lambda = 0.9999;
    const double fos_rounds = 1.0 / (1.0 - lambda);
    const double sos_rounds = 1.0 / std::sqrt(1.0 - lambda);
    EXPECT_GT(fos_rounds / sos_rounds, 50.0);
}

} // namespace
} // namespace dlb
