// Tests for the experiment runner and recorder.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/initial_load.hpp"
#include "sim/runner.hpp"

namespace dlb {
namespace {

experiment_config base_config(const graph& g, scheme_params scheme)
{
    experiment_config config;
    config.diffusion = {&g, make_alpha(g, alpha_policy::max_degree_plus_one),
                        speed_profile::uniform(g.num_nodes()), scheme};
    config.rounds = 100;
    return config;
}

TEST(Runner, RecordsExpectedNumberOfRows)
{
    const graph g = make_torus_2d(5, 5);
    auto config = base_config(g, fos_scheme());
    config.rounds = 50;
    config.record_every = 10;
    const auto series = run_experiment(config, point_load(25, 0, 2500));
    // Rounds 0, 10, 20, 30, 40, 50.
    ASSERT_EQ(series.size(), 6u);
    EXPECT_EQ(series.rounds.front(), 0);
    EXPECT_EQ(series.rounds.back(), 50);
}

TEST(Runner, MetricsDecreaseUnderBalancing)
{
    const graph g = make_torus_2d(6, 6);
    auto config = base_config(g, fos_scheme());
    config.rounds = 800;
    const auto series = run_experiment(config, point_load(36, 0, 36000));
    EXPECT_LT(series.max_minus_average.back(),
              series.max_minus_average.front() / 100.0);
    EXPECT_LT(series.potential_over_n.back(), series.potential_over_n.front());
}

TEST(Runner, SwitchPolicyIsAppliedAndRecorded)
{
    const graph g = make_torus_2d(8, 8);
    const double beta = beta_opt(torus_2d_lambda(8, 8));
    auto config = base_config(g, sos_scheme(beta));
    config.rounds = 400;
    config.switching = switch_policy::at(150);
    const auto series = run_experiment(config, point_load(64, 0, 64000));
    EXPECT_EQ(series.switch_round, 150);
}

TEST(Runner, LocalThresholdSwitchFires)
{
    const graph g = make_torus_2d(8, 8);
    const double beta = beta_opt(torus_2d_lambda(8, 8));
    auto config = base_config(g, sos_scheme(beta));
    config.rounds = 1500;
    config.switching = switch_policy::when_local_below(10.0);
    const auto series = run_experiment(config, point_load(64, 0, 64000));
    EXPECT_GE(series.switch_round, 0);
    // After the switch the imbalance must end small (paper: drops to ~7).
    EXPECT_LE(series.max_minus_average.back(), 10.0);
}

TEST(Runner, ContinuousTwinDeviationRecorded)
{
    const graph g = make_torus_2d(6, 6);
    auto config = base_config(g, fos_scheme());
    config.rounds = 200;
    config.run_continuous_twin = true;
    const auto series = run_experiment(config, point_load(36, 0, 3600));
    ASSERT_EQ(series.deviation_from_twin.size(), series.size());
    EXPECT_DOUBLE_EQ(series.deviation_from_twin.front(), 0.0);
    for (const double d : series.deviation_from_twin) EXPECT_LT(d, 50.0);
}

TEST(Runner, ContinuousEngineRuns)
{
    const graph g = make_torus_2d(5, 5);
    auto config = base_config(g, fos_scheme());
    config.process = process_kind::continuous;
    config.rounds = 300;
    const auto outcome =
        run_experiment_with_final_load(config, point_load(25, 0, 2500));
    ASSERT_EQ(outcome.final_load_continuous.size(), 25u);
    EXPECT_TRUE(outcome.final_load.empty());
    for (const double v : outcome.final_load_continuous)
        EXPECT_NEAR(v, 100.0, 1.0);
}

TEST(Runner, CumulativeEngineRuns)
{
    const graph g = make_torus_2d(5, 5);
    auto config = base_config(g, fos_scheme());
    config.process = process_kind::cumulative;
    config.rounds = 500;
    const auto outcome =
        run_experiment_with_final_load(config, point_load(25, 0, 2500));
    ASSERT_EQ(outcome.final_load.size(), 25u);
    EXPECT_LE(outcome.series.max_minus_average.back(), 3.0);
}

TEST(Runner, RemainingImbalanceDetected)
{
    const graph g = make_torus_2d(6, 6);
    auto config = base_config(g, fos_scheme());
    config.rounds = 2500;
    config.imbalance_window = 300;
    const auto series = run_experiment(config, point_load(36, 0, 36000));
    EXPECT_TRUE(series.imbalance_converged);
    EXPECT_LE(series.remaining_imbalance, 8.0);
}

TEST(Runner, Validation)
{
    const graph g = make_cycle(4);
    auto config = base_config(g, fos_scheme());
    config.rounds = -1;
    EXPECT_THROW(run_experiment(config, point_load(4, 0, 4)),
                 std::invalid_argument);
    config.rounds = 10;
    config.diffusion.network = nullptr;
    EXPECT_THROW(run_experiment(config, point_load(4, 0, 4)),
                 std::invalid_argument);
}

TEST(Recorder, CsvRoundTrip)
{
    const graph g = make_torus_2d(4, 4);
    auto config = base_config(g, fos_scheme());
    config.rounds = 20;
    config.record_every = 5;
    const auto series = run_experiment(config, point_load(16, 0, 1600));

    const std::string path = ::testing::TempDir() + "dlb_runner_series.csv";
    write_csv(path, series);
    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, 1 + static_cast<int>(series.size()));
    std::remove(path.c_str());
}

TEST(Recorder, SummaryMentionsKeyNumbers)
{
    const graph g = make_torus_2d(4, 4);
    auto config = base_config(g, fos_scheme());
    config.rounds = 10;
    const auto series = run_experiment(config, point_load(16, 0, 160));
    std::ostringstream out;
    print_summary(out, "unit-test", series);
    const std::string text = out.str();
    EXPECT_NE(text.find("unit-test"), std::string::npos);
    EXPECT_NE(text.find("max-avg"), std::string::npos);
    print_series(out, "max-avg", series, &time_series::max_minus_average, 5);
    EXPECT_NE(out.str().find("[0]"), std::string::npos);
}

} // namespace
} // namespace dlb
