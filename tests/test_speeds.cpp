// Tests for heterogeneous speed profiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/speeds.hpp"

namespace dlb {
namespace {

TEST(Speeds, UniformProfile)
{
    const auto p = speed_profile::uniform(10);
    EXPECT_TRUE(p.is_uniform());
    EXPECT_EQ(p.size(), 10);
    EXPECT_DOUBLE_EQ(p.total(), 10.0);
    EXPECT_DOUBLE_EQ(p.max_speed(), 1.0);
    EXPECT_DOUBLE_EQ(p.min_speed(), 1.0);
    for (node_id v = 0; v < 10; ++v) EXPECT_DOUBLE_EQ(p.speed(v), 1.0);
}

TEST(Speeds, FromVector)
{
    const auto p = speed_profile::from_vector({1.0, 2.0, 3.0});
    EXPECT_FALSE(p.is_uniform());
    EXPECT_DOUBLE_EQ(p.total(), 6.0);
    EXPECT_DOUBLE_EQ(p.max_speed(), 3.0);
    EXPECT_DOUBLE_EQ(p.min_speed(), 1.0);
    EXPECT_DOUBLE_EQ(p.speed(1), 2.0);
}

TEST(Speeds, AllOnesCollapsesToUniform)
{
    const auto p = speed_profile::from_vector({1.0, 1.0, 1.0});
    EXPECT_TRUE(p.is_uniform());
}

TEST(Speeds, RejectsSpeedBelowOne)
{
    EXPECT_THROW(speed_profile::from_vector({1.0, 0.5}), std::invalid_argument);
    EXPECT_THROW(speed_profile::from_vector({-1.0}), std::invalid_argument);
}

TEST(Speeds, IdealLoadProportionalToSpeed)
{
    const auto p = speed_profile::from_vector({1.0, 3.0});
    const auto ideal = p.ideal_load(100.0);
    EXPECT_DOUBLE_EQ(ideal[0], 25.0);
    EXPECT_DOUBLE_EQ(ideal[1], 75.0);
}

TEST(Speeds, IdealLoadSumsToTotal)
{
    const auto p = speed_profile::bimodal(100, 0.3, 8.0, 42);
    const auto ideal = p.ideal_load(1234.0);
    EXPECT_NEAR(std::accumulate(ideal.begin(), ideal.end(), 0.0), 1234.0, 1e-9);
}

TEST(Speeds, BimodalCounts)
{
    const auto p = speed_profile::bimodal(100, 0.25, 4.0, 7);
    int fast = 0;
    for (node_id v = 0; v < 100; ++v) {
        if (p.speed(v) == 4.0)
            ++fast;
        else
            EXPECT_DOUBLE_EQ(p.speed(v), 1.0);
    }
    EXPECT_EQ(fast, 25);
    EXPECT_DOUBLE_EQ(p.max_speed(), 4.0);
}

TEST(Speeds, BimodalDeterministicInSeed)
{
    const auto a = speed_profile::bimodal(50, 0.5, 2.0, 9);
    const auto b = speed_profile::bimodal(50, 0.5, 2.0, 9);
    for (node_id v = 0; v < 50; ++v) EXPECT_EQ(a.speed(v), b.speed(v));
}

TEST(Speeds, BimodalValidatesArguments)
{
    EXPECT_THROW(speed_profile::bimodal(10, -0.1, 2.0, 1), std::invalid_argument);
    EXPECT_THROW(speed_profile::bimodal(10, 1.1, 2.0, 1), std::invalid_argument);
    EXPECT_THROW(speed_profile::bimodal(10, 0.5, 0.5, 1), std::invalid_argument);
}

TEST(Speeds, ZipfBoundsAndFloor)
{
    const auto p = speed_profile::zipf(100, 1.0, 16.0, 3);
    EXPECT_DOUBLE_EQ(p.max_speed(), 16.0);
    EXPECT_DOUBLE_EQ(p.min_speed(), 1.0);
    for (node_id v = 0; v < 100; ++v) EXPECT_GE(p.speed(v), 1.0);
}

TEST(Speeds, ZipfTotalsMatchFormula)
{
    const auto p = speed_profile::zipf(4, 1.0, 8.0, 5);
    // Ranked speeds: 8, 4, 8/3, 2 (all >= 1, no flooring here).
    EXPECT_NEAR(p.total(), 8.0 + 4.0 + 8.0 / 3.0 + 2.0, 1e-12);
}

} // namespace
} // namespace dlb
