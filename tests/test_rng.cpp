// Tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace dlb {
namespace {

TEST(Splitmix64, IsDeterministic)
{
    std::uint64_t s1 = 42, s2 = 42;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(Splitmix64, AdvancesState)
{
    std::uint64_t state = 42;
    const auto a = splitmix64(state);
    const auto b = splitmix64(state);
    EXPECT_NE(a, b);
}

TEST(Mix64, DiffersAcrossInputs)
{
    std::set<std::uint64_t> values;
    for (std::uint64_t a = 0; a < 10; ++a)
        for (std::uint64_t b = 0; b < 10; ++b)
            for (std::uint64_t c = 0; c < 3; ++c) values.insert(mix64(a, b, c));
    EXPECT_EQ(values.size(), 300u);
}

TEST(Xoshiro, SameSeedSameSequence)
{
    xoshiro256ss a{123}, b{123};
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge)
{
    xoshiro256ss a{1}, b{2};
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a() == b()) ++equal;
    EXPECT_LE(equal, 1);
}

TEST(Xoshiro, DoubleInUnitInterval)
{
    xoshiro256ss rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.next_double();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Xoshiro, DoubleMeanIsHalf)
{
    xoshiro256ss rng{11};
    double sum = 0.0;
    const int samples = 200000;
    for (int i = 0; i < samples; ++i) sum += rng.next_double();
    EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowRespectsBound)
{
    xoshiro256ss rng{5};
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Xoshiro, NextBelowZeroOrOneIsZero)
{
    xoshiro256ss rng{5};
    EXPECT_EQ(rng.next_below(0), 0u);
    EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, NextBelowIsApproximatelyUniform)
{
    xoshiro256ss rng{17};
    const std::uint64_t bound = 10;
    std::vector<int> histogram(bound, 0);
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) ++histogram[rng.next_below(bound)];
    for (const int count : histogram)
        EXPECT_NEAR(count, samples / static_cast<int>(bound), samples / 100);
}

TEST(Xoshiro, BernoulliEdgeCases)
{
    xoshiro256ss rng{3};
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.next_bernoulli(0.0));
        EXPECT_TRUE(rng.next_bernoulli(1.0));
        EXPECT_FALSE(rng.next_bernoulli(-0.5));
        EXPECT_TRUE(rng.next_bernoulli(1.5));
    }
}

TEST(Xoshiro, BernoulliFrequency)
{
    xoshiro256ss rng{29};
    const double p = 0.3;
    int hits = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        if (rng.next_bernoulli(p)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / samples, p, 0.01);
}

TEST(StreamFor, IndependentOfCallOrder)
{
    auto a = stream_for(9, 5, 7);
    auto b = stream_for(9, 6, 7);
    auto a2 = stream_for(9, 5, 7);
    EXPECT_EQ(a(), a2());
    // Different node: different stream.
    auto c = stream_for(9, 5, 7);
    c(); // advance
    EXPECT_NE(b(), c());
}

TEST(StreamFor, DistinctAcrossRoundsAndNodes)
{
    std::set<std::uint64_t> first_draws;
    for (std::uint64_t node = 0; node < 50; ++node)
        for (std::uint64_t round = 0; round < 50; ++round)
            first_draws.insert(stream_for(1, node, round)());
    EXPECT_EQ(first_draws.size(), 2500u);
}

} // namespace
} // namespace dlb
