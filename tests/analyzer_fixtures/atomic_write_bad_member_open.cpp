// Rule 1 positive, regression twin of src/util/csv.cpp: the stream is a data
// member opened from a constructor init list, so the write site and the
// member declaration are in different scopes.
namespace std {
class string { public: string(); string(const char*); };
class ofstream {
public:
    ofstream();
    explicit ofstream(const string& path);
};
} // namespace std

struct row_sink {
    std::ofstream out_;
    explicit row_sink(const std::string& path);
};

row_sink::row_sink(const std::string& path)
    : out_(path)  // analyze-expect: atomic-write
{
}
