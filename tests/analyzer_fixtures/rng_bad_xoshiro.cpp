// Rule 3 positive, regression twin of the pre-analyzer src/core/speeds.cpp:
// hand-seeding a xoshiro stream outside util/rng.hpp pins this call site to
// the v1 stream format behind the dispatch surface's back.
using u64 = unsigned long long;
struct xoshiro256ss {
    u64 s[4];
    u64 next_below(u64 bound);
};
auto mix64(u64 a, u64 b = 0, u64 c = 0) -> u64;

u64 pick(u64 seed, u64 n)
{
    xoshiro256ss rng{mix64(seed, 0xb1b0u)};  // analyze-expect: rng-contract
    return rng.next_below(n);
}
