// Rule 4 positive: += into a by-reference captured double inside a lambda
// handed to the pool; the combine order varies with thread count.
namespace std { using size_t = decltype(sizeof(0)); }
namespace executor {
template <class F> void parallel_for(std::size_t begin, std::size_t end, F&& body);
} // namespace executor

double total_weight(const double* weight, std::size_t n)
{
    double sum = 0.0;
    executor::parallel_for(0, n, [&](std::size_t i) {
        sum += weight[i];  // analyze-expect: nondet-reduce
    });
    return sum;
}
