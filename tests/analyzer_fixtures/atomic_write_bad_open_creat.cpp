// Rule 1 positive: raw open(2) with O_CREAT creates a file too.
#define O_CREAT 0100
#define O_WRONLY 01
namespace std {
class string { public: string(const char*); const char* c_str() const; };
} // namespace std
extern "C" int open(const char* path, int flags, int mode);

int make_marker(const std::string& path)
{
    return open(path.c_str(), O_CREAT | O_WRONLY, 0644);  // analyze-expect: atomic-write
}
