// Rule 1 negative: the canonical protocol — stage to temp_path_for's name,
// rename over the destination.
namespace std {
class string { public: string(); string(const char*); };
class ofstream {
public:
    explicit ofstream(const string& path);
    ofstream& operator<<(const string&);
};
} // namespace std
namespace dlb { std::string temp_path_for(const std::string& path); }
void rename_file(const std::string& from, const std::string& to);

void save_report(const std::string& path, const std::string& body)
{
    const std::string temp = dlb::temp_path_for(path);
    std::ofstream out(temp);
    out << body;
    rename_file(temp, path);
}
