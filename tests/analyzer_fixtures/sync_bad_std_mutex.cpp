// Rule 2 positive: raw std:: primitives outside util/sync.hpp lose the
// thread-safety annotations the dlb:: wrappers carry.
namespace std {
class mutex { public: void lock(); void unlock(); };
template <class M> class lock_guard { public: explicit lock_guard(M& m); };
} // namespace std

struct stats {
    std::mutex guard;  // analyze-expect: sync-wrapper
    long count = 0;
};

void bump(stats& s)
{
    std::lock_guard<std::mutex> hold(s.guard);  // analyze-expect: sync-wrapper
    ++s.count;
}
