// Rule 3 positive: re-deriving a stream by hand — declaring the splitmix64
// surface, finalizing with its magic increment, calling it — all outside
// util/rng.hpp.
using u64 = unsigned long long;
auto splitmix64(u64& state) -> u64;  // analyze-expect: rng-contract

u64 derive(u64 seed, u64 node)
{
    u64 word = seed + node * 0x9e3779b97f4a7c15ull;  // analyze-expect: rng-contract
    return splitmix64(word);  // analyze-expect: rng-contract
}
