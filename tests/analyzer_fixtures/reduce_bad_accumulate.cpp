// Rule 4 positive: std::accumulate into a captured double from a pool task
// is the same hazard spelled differently.
namespace std {
using size_t = decltype(sizeof(0));
template <class It, class T> T accumulate(It first, It last, T init);
} // namespace std
namespace executor {
template <class F> void parallel_tasks(std::size_t count, F&& body);
} // namespace executor

double drain(const double* weight, std::size_t n)
{
    double total = 0.0;
    executor::parallel_tasks(2, [&, weight, n](std::size_t task) {
        total = std::accumulate(weight, weight + n, 0.0);  // analyze-expect: nondet-reduce
    });
    return total;
}
