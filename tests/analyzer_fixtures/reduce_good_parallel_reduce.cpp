// Rule 4 negative: parallel_reduce's fixed-chunk ordered combine, plus a
// value-capture elementwise lambda — both deterministic by construction.
namespace std { using size_t = decltype(sizeof(0)); }
namespace executor {
template <class T, class M, class C>
T parallel_reduce(std::size_t begin, std::size_t end, T init, M&& map, C&& combine);
template <class F> void parallel_for(std::size_t begin, std::size_t end, F&& body);
} // namespace executor

double total_weight(const double* weight, std::size_t n)
{
    return executor::parallel_reduce(
        std::size_t{0}, n, 0.0,
        [weight](std::size_t lo, std::size_t hi) {
            double part = 0.0;
            for (std::size_t i = lo; i < hi; ++i) part += weight[i];
            return part;
        },
        [](double a, double b) { return a + b; });
}

void scale(double* weight, std::size_t n, double factor)
{
    executor::parallel_for(std::size_t{0}, n, [=](std::size_t i) {
        weight[i] *= factor;
    });
}
