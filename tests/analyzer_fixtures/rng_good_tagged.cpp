// Rule 3 negative: structural randomness drawn through the sanctioned
// dispatch surface.
using u64 = unsigned long long;
struct xoshiro256ss {
    u64 s[4];
    u64 next_below(u64 bound);
};
auto tagged_rng(u64 seed, u64 tag, u64 extra = 0) -> xoshiro256ss;

u64 shuffle_pick(u64 seed, u64 n)
{
    auto rng = tagged_rng(seed, 0x5eedu);
    return rng.next_below(n);
}
