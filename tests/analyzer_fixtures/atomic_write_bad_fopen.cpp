// Rule 1 positive: C-style write-mode fopen, same contract.
using FILE = struct file_impl;
extern "C" FILE* fopen(const char* path, const char* mode);
extern "C" int fputs(const char* text, FILE* stream);

void log_marker(const char* path)
{
    FILE* out = fopen(path, "w");  // analyze-expect: atomic-write
    if (out) fputs("done\n", out);
}
