// Rule 1 negative: the protocol entry is reached transitively, through a
// helper — the analyzer walks the call graph, not just the enclosing
// function's direct calls.
namespace std {
class string { public: string(); string(const char*); };
class ofstream { public: explicit ofstream(const string& path); };
} // namespace std
namespace dlb { std::string temp_path_for(const std::string& path); }

std::string stage_path(const std::string& path)
{
    return dlb::temp_path_for(path);
}

void save(const std::string& path)
{
    std::ofstream out(stage_path(path));
}
