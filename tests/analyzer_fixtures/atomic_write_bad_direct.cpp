// Rule 1 positive: a persistence write that never touches the temp+rename
// protocol.
namespace std {
class string { public: string(); string(const char*); };
class ofstream {
public:
    explicit ofstream(const string& path);
    ofstream& operator<<(const char*);
};
} // namespace std

void dump_state(const std::string& path)
{
    std::ofstream out(path);  // analyze-expect: atomic-write
    out << "state\n";
}
