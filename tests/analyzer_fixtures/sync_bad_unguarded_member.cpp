// Rule 2 positive (completeness): a dlb::mutex member with no
// DLB_GUARDED_BY association protects nothing the compiler can check.
#define DLB_GUARDED_BY(x)
namespace dlb { struct mutex {}; }

struct counters {
    dlb::mutex m_;  // analyze-expect: sync-wrapper
    long total = 0;
};
