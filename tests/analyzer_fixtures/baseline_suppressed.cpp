// A baseline entry (see baseline.txt next to this fixture) suppresses a
// pre-existing finding without touching the source.
namespace std {
class string { public: string(const char*); };
class ofstream { public: explicit ofstream(const string& path); };
} // namespace std

void legacy_dump(const std::string& path)
{
    std::ofstream out(path);
}
