// An allow annotation without a reason suppresses nothing for free: the
// missing reason is itself reported.
namespace std {
class string { public: string(const char*); };
class ofstream { public: explicit ofstream(const string& path); };
} // namespace std

void scratch_dump(const std::string& path)
{
    // dlb-analyzer: allow(atomic-write)
    std::ofstream out(path);  // analyze-expect: empty-allow-reason
}
