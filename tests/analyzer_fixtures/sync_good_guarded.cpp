// Rule 2 negative: every dlb::mutex member has a guarded field association.
#define DLB_GUARDED_BY(x)
namespace dlb { struct mutex {}; }

struct counters {
    dlb::mutex m_;
    long total DLB_GUARDED_BY(m_) = 0;
    long peak DLB_GUARDED_BY(m_) = 0;
};
