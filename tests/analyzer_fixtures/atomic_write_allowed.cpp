// Rule 1 allow: a reason-bearing annotation suppresses the finding.
namespace std {
class string { public: string(const char*); };
class ofstream { public: explicit ofstream(const string& path); };
} // namespace std

void scratch_dump(const std::string& path)
{
    // dlb-analyzer: allow(atomic-write) local debugging scratch file, never read by the pipeline
    std::ofstream out(path);
}
