// Tests for Section V: negative-load bounds and their empirical validity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/metrics.hpp"
#include "core/negative_load.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

TEST(NegativeLoadBounds, Formulas)
{
    EXPECT_DOUBLE_EQ(negative_load_bounds::observation5(100.0, 5.0), -50.0);
    const double thm10 = negative_load_bounds::theorem10(100.0, 5.0, 0.75, 1.0);
    EXPECT_DOUBLE_EQ(thm10, -(50.0 + 50.0 / 0.5));
    const double thm11 =
        negative_load_bounds::theorem11(100.0, 5.0, 4.0, 0.75, 1.0);
    EXPECT_DOUBLE_EQ(thm11, -(50.0 + (50.0 + 16.0) / 0.5));
}

TEST(NegativeLoadBounds, SufficientLoadsArePositiveNegations)
{
    EXPECT_DOUBLE_EQ(
        negative_load_bounds::sufficient_initial_load_continuous(64.0, 2.0, 0.5),
        -negative_load_bounds::theorem10(64.0, 2.0, 0.5));
    EXPECT_DOUBLE_EQ(negative_load_bounds::sufficient_initial_load_discrete(
                         64.0, 2.0, 4.0, 0.5),
                     -negative_load_bounds::theorem11(64.0, 2.0, 4.0, 0.5));
}

TEST(NegativeLoadBounds, LambdaValidation)
{
    EXPECT_THROW(negative_load_bounds::theorem10(10, 1, 1.0), std::invalid_argument);
    EXPECT_THROW(negative_load_bounds::theorem10(10, 1, -0.1), std::invalid_argument);
}

diffusion_config sos_config(const graph& g, double lambda)
{
    return {&g, make_alpha(g, alpha_policy::max_degree_plus_one),
            speed_profile::uniform(g.num_nodes()),
            sos_scheme(beta_opt(lambda))};
}

TEST(NegativeLoad, Observation5HoldsEmpirically)
{
    // End-of-round continuous SOS loads never drop below -sqrt(n)*Delta(0).
    const node_id side = 10;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const double n = 100.0;
    std::vector<double> load(100, 0.0);
    load[0] = 100000.0; // Delta(0) = 100000 - 1000
    continuous_process proc(sos_config(g, lambda), load);
    proc.run(1000);
    const double delta0 = 100000.0 - 1000.0;
    EXPECT_GE(proc.negative_stats().min_end_of_round_load,
              negative_load_bounds::observation5(n, delta0));
}

TEST(NegativeLoad, Theorem10TransientBoundHoldsEmpirically)
{
    const node_id side = 12;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const double n = static_cast<double>(side) * side;
    const double average = 500.0;
    std::vector<double> load(static_cast<std::size_t>(n), 0.0);
    load[0] = average * n;
    continuous_process proc(sos_config(g, lambda), load);
    proc.run(1500);
    const double delta0 = average * n - average;
    EXPECT_GE(proc.negative_stats().min_transient_load,
              negative_load_bounds::theorem10(n, delta0, lambda));
    // And the transient dips below the end-of-round bound's scale, i.e. the
    // instrumentation is actually measuring the stricter quantity.
    EXPECT_LE(proc.negative_stats().min_transient_load,
              proc.negative_stats().min_end_of_round_load + 1e-9);
}

TEST(NegativeLoad, SufficientUniformLoadPreventsNegativeContinuous)
{
    // Add the Theorem-10 sufficient load to every node: no negative load.
    const node_id side = 8;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const double n = 64.0;

    std::vector<double> load(64, 0.0);
    const double spike = 6400.0;
    load[0] = spike;
    const double delta0 = spike - spike / n;
    const double cushion = negative_load_bounds::sufficient_initial_load_continuous(
        n, delta0, lambda);
    for (auto& v : load) v += cushion;

    continuous_process proc(sos_config(g, lambda), load);
    proc.run(2000);
    EXPECT_GE(proc.negative_stats().min_transient_load, -1e-6);
}

TEST(NegativeLoad, DiscreteSufficientLoadPreventsNegative)
{
    const node_id side = 8;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    const double n = 64.0;

    const std::int64_t spike = 6400;
    const double delta0 = static_cast<double>(spike) - spike / n;
    const auto cushion =
        static_cast<std::int64_t>(std::ceil(
            negative_load_bounds::sufficient_initial_load_discrete(n, delta0, 4.0,
                                                                   lambda)));
    auto load = balanced_load(64, cushion);
    load[0] += spike;

    discrete_process proc(sos_config(g, lambda), load,
                          rounding_kind::randomized, 77);
    proc.run(2000);
    EXPECT_GE(proc.negative_stats().min_transient_load, 0.0);
    EXPECT_TRUE(proc.verify_conservation());
}

TEST(NegativeLoad, ZeroCushionDoesProduceNegativeTransient)
{
    // Control experiment: without the cushion SOS does go transiently
    // negative, so the previous tests are not vacuous.
    const node_id side = 8;
    const graph g = make_torus_2d(side, side);
    const double lambda = torus_2d_lambda(side, side);
    discrete_process proc(sos_config(g, lambda), point_load(64, 0, 6400),
                          rounding_kind::randomized, 77);
    proc.run(500);
    EXPECT_LT(proc.negative_stats().min_transient_load, 0.0);
}

TEST(NegativeLoad, FosDoesNotGoNegative)
{
    // FOS with alpha_ij = 1/(max deg + 1) sends at most its current load.
    const graph g = make_torus_2d(8, 8);
    diffusion_config config{&g, make_alpha(g, alpha_policy::max_degree_plus_one),
                            speed_profile::uniform(64), fos_scheme()};
    discrete_process proc(config, point_load(64, 0, 6400),
                          rounding_kind::randomized, 5);
    proc.run(1000);
    EXPECT_GE(proc.negative_stats().min_transient_load, 0.0);
}

} // namespace
} // namespace dlb
