// Golden vectors pinning both RNG stream formats bit-exactly.
//
// v1 (stream_for + xoshiro256**) is the default format and the one every
// pre-version report was produced under: its vectors may NEVER change — a
// failure here means the default format drifted, which silently invalidates
// every archived campaign report and golden series. v2 (counter-based
// draw_u64) is pinned the same way from the release that introduced it:
// evolving the stream again means adding a v3, not editing v2 (see
// docs/architecture.md, "RNG-stream contract").
//
// Two layers are pinned per format: the raw draw words for fixed
// (seed, node, round) inputs, and the randomized-rounding output of a whole
// fixed scenario (3x3 torus, deterministic antisymmetric scheduled flows),
// which additionally freezes the draw *consumption order* of the owner
// pass — raw words alone would not catch a reordering.
#include <gtest/gtest.h>

#include <vector>

#include "core/rounding.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dlb {
namespace {

struct stream_golden {
    std::uint64_t seed;
    std::uint64_t node;
    std::uint64_t round;
    std::uint64_t words[3]; // first three draws of the substream
};

// v1: the first three outputs of stream_for(seed, node, round).
const stream_golden kV1Streams[] = {
    {1ULL, 0ULL, 0ULL,
     {4623014522170988166ULL, 12820495699381722146ULL, 17965059027334124938ULL}},
    {1ULL, 1ULL, 0ULL,
     {6779608536529617433ULL, 6030115801519976082ULL, 14546059765013774290ULL}},
    {1ULL, 0ULL, 1ULL,
     {15685890622521051859ULL, 14631778451451619110ULL, 9148128671176408727ULL}},
    {42ULL, 7ULL, 3ULL,
     {13094145838232242919ULL, 130126718218767970ULL, 761758640811976620ULL}},
    {6840124660045547947ULL, 1000000ULL, 4096ULL,
     {10169898920969654354ULL, 7796193526877424401ULL, 8910569974820711233ULL}},
    {18446744073709551615ULL, 5ULL, 2ULL,
     {12880894865415816502ULL, 6556835055425169346ULL, 11672749438557834409ULL}},
};

// v2: draw_u64(seed, node, round, i) for i = 0, 1, 2.
const stream_golden kV2Streams[] = {
    {1ULL, 0ULL, 0ULL,
     {6535721012157785706ULL, 2134938885099536146ULL, 18190390861039114489ULL}},
    {1ULL, 1ULL, 0ULL,
     {10419041500976450680ULL, 16232538827714772508ULL, 5089427536641201908ULL}},
    {1ULL, 0ULL, 1ULL,
     {15074325541806124071ULL, 17350095584914184684ULL, 11247279047685065566ULL}},
    {42ULL, 7ULL, 3ULL,
     {5629528106756497104ULL, 6357449888078014566ULL, 730100476589100835ULL}},
    {6840124660045547947ULL, 1000000ULL, 4096ULL,
     {769910712315693037ULL, 5854660214317324125ULL, 3797810075799329834ULL}},
    {18446744073709551615ULL, 5ULL, 2ULL,
     {12322254161731393095ULL, 8656377847639188561ULL, 7905170758349639469ULL}},
};

TEST(RngGolden, V1StreamForIsPinned)
{
    for (const auto& golden : kV1Streams) {
        auto rng = stream_for(golden.seed, golden.node, golden.round);
        for (const std::uint64_t word : golden.words)
            EXPECT_EQ(rng(), word)
                << "seed=" << golden.seed << " node=" << golden.node
                << " round=" << golden.round;
    }
}

TEST(RngGolden, V2DrawU64IsPinned)
{
    for (const auto& golden : kV2Streams) {
        for (std::uint64_t i = 0; i < 3; ++i)
            EXPECT_EQ(draw_u64(golden.seed, golden.node, golden.round, i),
                      golden.words[i])
                << "seed=" << golden.seed << " node=" << golden.node
                << " round=" << golden.round << " i=" << i;
    }
}

TEST(RngGolden, V2SubstreamIsNotTheV1SeedingSequence)
{
    // The v2 base is version-tagged: without the tag, v2 draws 0..3 would
    // be exactly the four state words v1's xoshiro ctor seeds from
    // mix64(seed, node+1, round+1) — deterministically coupling the two
    // formats and silently breaking "run both versions as independent
    // replicates". Pin the decorrelation.
    for (const auto& golden : kV2Streams) {
        std::uint64_t v1_base =
            mix64(golden.seed, golden.node + 1, golden.round + 1);
        for (const std::uint64_t v2_word : golden.words)
            EXPECT_NE(v2_word, splitmix64(v1_base)) // advances v1_base
                << "seed=" << golden.seed << " node=" << golden.node;
    }
}

TEST(RngGolden, V2CounterRngMatchesDrawU64)
{
    // The incremental view and the stateless contract are the same stream:
    // counter_rng output k equals draw_u64(..., k).
    for (const auto& golden : kV2Streams) {
        counter_rng rng(golden.seed, golden.node, golden.round);
        for (std::uint64_t i = 0; i < 16; ++i)
            EXPECT_EQ(rng(), draw_u64(golden.seed, golden.node, golden.round, i));
    }
}

// The fixed rounding scenario: a 3x3 torus with deterministic antisymmetric
// scheduled flows in roughly [-2, 3.1]. Must match gen formula used to
// produce the tables below exactly.
std::vector<double> golden_scheduled(const graph& g)
{
    std::vector<double> scheduled(static_cast<std::size_t>(g.num_half_edges()));
    for (node_id v = 0; v < g.num_nodes(); ++v)
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h)
            if (g.is_canonical(h)) {
                scheduled[h] =
                    static_cast<double>((h * 37 + 11) % 97) / 19.0 - 2.0;
                scheduled[g.twin(h)] = -scheduled[h];
            }
    return scheduled;
}

struct rounding_golden {
    rng_version version;
    std::int64_t round;
    std::int64_t flows[36]; // one per half-edge of the 3x3 torus
};

const rounding_golden kRoundingGoldens[] = {
    {rng_version::v1, 0,
     {-2, 1, 2, 0, 2, -1, 0, 2, -1, 1, 2, -1, -2, -2, 0, 2, 0, 2,
      3, 0, -2, 0, -3, 3, 0, -2, -2, 1, -2, 0, 2, 3, 1, -3, -1, -3}},
    {rng_version::v1, 1,
     {-1, 0, 3, 0, 1, -2, 0, 2, 0, 2, 3, 0, -3, -1, 0, 3, 0, 1,
      3, 0, -3, 0, -3, 3, 0, -3, -1, 1, -2, 0, 1, 4, 0, -3, -1, -4}},
    {rng_version::v2, 0,
     {-1, 0, 3, -1, 1, -2, 0, 2, 0, 2, 3, 0, -3, -2, 0, 2, 0, 2,
      3, 0, -3, 0, -3, 3, 1, -2, -1, 0, -2, 0, 1, 4, 0, -3, 0, -4}},
    {rng_version::v2, 1,
     {-2, 1, 2, -1, 2, -2, 0, 2, -1, 2, 2, 0, -2, -2, 0, 2, 0, 2,
      3, 0, -2, 0, -3, 2, 1, -2, -1, 0, -2, 0, 1, 4, 0, -2, 0, -4}},
};

TEST(RngGolden, RandomizedRoundingOutputsArePinned)
{
    const graph g = make_torus_2d(3, 3);
    ASSERT_EQ(g.num_half_edges(), 36);
    const auto scheduled = golden_scheduled(g);
    std::vector<std::int64_t> flows(scheduled.size());

    for (const auto& golden : kRoundingGoldens) {
        round_flows(g, rounding_kind::randomized, scheduled, 42, golden.round,
                    flows, default_executor(), golden.version);
        for (std::size_t h = 0; h < flows.size(); ++h)
            EXPECT_EQ(flows[h], golden.flows[h])
                << "version=" << to_string(golden.version)
                << " round=" << golden.round << " h=" << h;
    }
}

TEST(RngGolden, OwnerPassMatchesFullRoundingOnOwnerSides)
{
    // The engine fast path must agree with round_flows on every owner
    // (positive-scheduled) half-edge, for both formats.
    const graph g = make_torus_2d(3, 3);
    const auto scheduled = golden_scheduled(g);
    std::vector<std::int64_t> full(scheduled.size());
    std::vector<std::int64_t> owner(scheduled.size());

    for (const rng_version version : {rng_version::v1, rng_version::v2}) {
        for (std::int64_t round = 0; round < 4; ++round) {
            round_flows(g, rounding_kind::randomized, scheduled, 42, round,
                        full, default_executor(), version);
            round_flows_randomized_owner(g, scheduled, 42, round, owner,
                                         default_executor(), version);
            for (half_edge_id h = 0; h < g.num_half_edges(); ++h) {
                if (scheduled[h] > 0.0) {
                    EXPECT_EQ(owner[h], full[h])
                        << "version=" << to_string(version) << " h=" << h;
                }
            }
        }
    }
}

} // namespace
} // namespace dlb
