// Tests for the thread-pool executor and engine determinism across
// executors.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/initial_load.hpp"
#include "sim/thread_pool.hpp"

namespace dlb {
namespace {

TEST(ThreadPool, CoversWholeRangeExactlyOnce)
{
    thread_pool pool(4);
    const std::int64_t count = 100000;
    std::vector<std::atomic<int>> touched(count);
    pool.parallel_for(count, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) touched[i].fetch_add(1);
    });
    for (std::int64_t i = 0; i < count; ++i)
        ASSERT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, DispatchDuringConstruction)
{
    // Regression (found by TSan): workers used to read workers_.size() for
    // the steal heuristic while the constructor was still emplacing threads
    // into the vector — a data race on the vector's internals. The count now
    // lives in worker_count_, written before the first spawn. Constructing
    // and dispatching immediately, many times, maximizes the overlap window;
    // the TSan CI job fails here if the race ever comes back.
    for (int iteration = 0; iteration < 20; ++iteration) {
        thread_pool pool(8);
        std::atomic<std::int64_t> sum{0};
        pool.parallel_for(100000, [&](std::int64_t begin, std::int64_t end) {
            sum.fetch_add(end - begin);
        });
        ASSERT_EQ(sum.load(), 100000);
    }
}

TEST(ThreadPool, HandlesZeroAndTinyRanges)
{
    thread_pool pool(4);
    int calls = 0;
    pool.parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    std::vector<int> touched(3, 0);
    pool.parallel_for(3, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) ++touched[i];
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPool, ReusableAcrossManyInvocations)
{
    thread_pool pool(3);
    std::atomic<std::int64_t> sum{0};
    for (int iteration = 0; iteration < 200; ++iteration) {
        pool.parallel_for(1000, [&](std::int64_t begin, std::int64_t end) {
            sum.fetch_add(end - begin);
        });
    }
    EXPECT_EQ(sum.load(), 200 * 1000);
}

TEST(ThreadPool, WorkerCount)
{
    thread_pool pool(5);
    EXPECT_EQ(pool.worker_count(), 5u);
    thread_pool auto_pool(0);
    EXPECT_GE(auto_pool.worker_count(), 1u);
}

TEST(ThreadPool, SerialExecutorEquivalence)
{
    // Same summation either way.
    serial_executor serial;
    thread_pool pool(4);
    const std::int64_t count = 5000;

    auto run = [&](executor& exec) {
        std::vector<std::int64_t> squares(count);
        exec.parallel_for(count, [&](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i) squares[i] = i * i;
        });
        return std::accumulate(squares.begin(), squares.end(), std::int64_t{0});
    };
    EXPECT_EQ(run(serial), run(pool));
}

TEST(ThreadPool, DiscreteProcessIdenticalAcrossExecutors)
{
    // The determinism guarantee: engine output is independent of threading.
    const graph g = make_torus_2d(12, 12);
    const double beta = beta_opt(torus_2d_lambda(12, 12));
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()), sos_scheme(beta)};

    serial_executor serial;
    thread_pool pool(7); // deliberately odd worker count

    discrete_process serial_proc(config, point_load(144, 0, 14400),
                                 rounding_kind::randomized, 99,
                                 negative_load_policy::allow, &serial);
    discrete_process pooled_proc(config, point_load(144, 0, 14400),
                                 rounding_kind::randomized, 99,
                                 negative_load_policy::allow, &pool);
    serial_proc.run(150);
    pooled_proc.run(150);
    ASSERT_TRUE(std::equal(serial_proc.load().begin(), serial_proc.load().end(),
                           pooled_proc.load().begin()));
    EXPECT_EQ(serial_proc.negative_stats().min_transient_load,
              pooled_proc.negative_stats().min_transient_load);
}

TEST(ThreadPool, ContinuousProcessIdenticalAcrossExecutors)
{
    const graph g = make_torus_2d(10, 10);
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()), fos_scheme()};
    serial_executor serial;
    thread_pool pool(4);

    continuous_process a(config, to_continuous(point_load(100, 0, 10000)), &serial);
    continuous_process b(config, to_continuous(point_load(100, 0, 10000)), &pool);
    a.run(100);
    b.run(100);
    for (node_id v = 0; v < 100; ++v)
        EXPECT_EQ(a.load()[v], b.load()[v]) << "node " << v;
}

} // namespace
} // namespace dlb
