// Tests for the FOS/SOS flow rules, including the linearity property
// (paper Lemma 1 / Definition 4).
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dlb {
namespace {

std::vector<double> random_vector(std::size_t size, std::uint64_t seed)
{
    std::vector<double> values(size);
    xoshiro256ss rng{seed};
    for (auto& v : values) v = rng.next_double() * 20.0 - 10.0;
    return values;
}

/// Antisymmetrizes a random per-half-edge vector to make a valid y(t-1).
std::vector<double> random_flows(const graph& g, std::uint64_t seed)
{
    std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()));
    xoshiro256ss rng{seed};
    for (node_id v = 0; v < g.num_nodes(); ++v)
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h)
            if (v < g.head(h)) {
                flows[h] = rng.next_double() * 4.0 - 2.0;
                flows[g.twin(h)] = -flows[h];
            }
    return flows;
}

TEST(Scheme, ValidateRejectsBadBeta)
{
    EXPECT_THROW(validate_scheme(sos_scheme(0.0)), std::invalid_argument);
    EXPECT_THROW(validate_scheme(sos_scheme(2.0)), std::invalid_argument);
    EXPECT_NO_THROW(validate_scheme(sos_scheme(1.5)));
    EXPECT_NO_THROW(validate_scheme(fos_scheme()));
}

TEST(Scheme, FosFlowsMatchFormula)
{
    const graph g = make_path(3); // alpha = 1/3 on both edges
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const std::vector<double> load{9.0, 3.0, 0.0};
    std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()));
    scheduled_flows(g, alpha, fos_scheme(), 0, load, {}, flows, default_executor());

    // Edge (0,1): 1/3 * (9-3) = 2 from 0's side.
    for (half_edge_id h = g.half_edge_begin(0); h < g.half_edge_end(0); ++h) {
        if (g.head(h) == 1) {
            EXPECT_NEAR(flows[h], 2.0, 1e-12);
        }
    }
    // Edge (1,2): 1/3 * (3-0) = 1 from 1's side.
    for (half_edge_id h = g.half_edge_begin(1); h < g.half_edge_end(1); ++h) {
        if (g.head(h) == 2) {
            EXPECT_NEAR(flows[h], 1.0, 1e-12);
        }
    }
}

TEST(Scheme, FlowsAreAntisymmetric)
{
    const graph g = make_torus_2d(4, 4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto load = random_vector(static_cast<std::size_t>(g.num_nodes()), 3);
    const auto prev = random_flows(g, 4);

    for (const auto scheme : {fos_scheme(), sos_scheme(1.7)}) {
        for (const std::int64_t rounds_in : {0, 5}) {
            std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()));
            scheduled_flows(g, alpha, scheme, rounds_in, load, prev, flows,
                            default_executor());
            for (half_edge_id h = 0; h < g.num_half_edges(); ++h)
                EXPECT_NEAR(flows[h], -flows[g.twin(h)], 1e-12);
        }
    }
}

TEST(Scheme, SosFirstRoundEqualsFos)
{
    const graph g = make_cycle(6);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto load = random_vector(6, 9);
    const auto prev = random_flows(g, 10);

    std::vector<double> fos_flows(static_cast<std::size_t>(g.num_half_edges()));
    std::vector<double> sos_flows(fos_flows.size());
    scheduled_flows(g, alpha, fos_scheme(), 0, load, {}, fos_flows,
                    default_executor());
    // rounds_in_scheme == 0: SOS must ignore prev and apply FOS.
    scheduled_flows(g, alpha, sos_scheme(1.9), 0, load, prev, sos_flows,
                    default_executor());
    for (half_edge_id h = 0; h < g.num_half_edges(); ++h)
        EXPECT_DOUBLE_EQ(sos_flows[h], fos_flows[h]);
}

TEST(Scheme, SosSecondRoundUsesPreviousFlows)
{
    const graph g = make_cycle(4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const std::vector<double> load{1.0, 0.0, 0.0, 0.0};
    const auto prev = random_flows(g, 21);
    const double beta = 1.6;

    std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()));
    scheduled_flows(g, alpha, sos_scheme(beta), 3, load, prev, flows,
                    default_executor());
    for (node_id v = 0; v < 4; ++v)
        for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v); ++h) {
            const double expected = (beta - 1.0) * prev[h] +
                                    beta * alpha[h] * (load[v] - load[g.head(h)]);
            EXPECT_NEAR(flows[h], expected, 1e-12);
        }
}

TEST(Scheme, LinearityLemma1)
{
    // A(a x + b x', a y + b y') == a A(x, y) + b A(x', y').
    const graph g = make_torus_2d(3, 4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto x1 = random_vector(12, 31);
    const auto x2 = random_vector(12, 32);
    const auto y1 = random_flows(g, 33);
    const auto y2 = random_flows(g, 34);
    const double a = 2.5, b = -1.25;

    for (const auto scheme : {fos_scheme(), sos_scheme(1.8)}) {
        std::vector<double> f1(static_cast<std::size_t>(g.num_half_edges()));
        std::vector<double> f2(f1.size()), f_combo(f1.size());
        std::vector<double> x_combo(12), y_combo(f1.size());
        for (std::size_t i = 0; i < 12; ++i) x_combo[i] = a * x1[i] + b * x2[i];
        for (std::size_t i = 0; i < y_combo.size(); ++i)
            y_combo[i] = a * y1[i] + b * y2[i];

        scheduled_flows(g, alpha, scheme, 2, x1, y1, f1, default_executor());
        scheduled_flows(g, alpha, scheme, 2, x2, y2, f2, default_executor());
        scheduled_flows(g, alpha, scheme, 2, x_combo, y_combo, f_combo,
                        default_executor());

        for (std::size_t i = 0; i < f_combo.size(); ++i)
            EXPECT_NEAR(f_combo[i], a * f1[i] + b * f2[i], 1e-10);
    }
}

TEST(Scheme, HeterogeneousGradientUsesNormalizedLoad)
{
    // Two nodes with speeds 1 and 3: flow follows x_i/s_i - x_j/s_j.
    const graph g = make_path(2);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    // Caller passes load_over_speed; verify a balanced-by-speed vector
    // produces zero flow.
    const std::vector<double> load_over_speed{5.0, 5.0}; // x = (5, 15), s = (1, 3)
    std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()));
    scheduled_flows(g, alpha, fos_scheme(), 0, load_over_speed, {}, flows,
                    default_executor());
    for (const double f : flows) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(Scheme, SizeValidation)
{
    const graph g = make_cycle(4);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    std::vector<double> flows(static_cast<std::size_t>(g.num_half_edges()));
    EXPECT_THROW(scheduled_flows(g, alpha, fos_scheme(), 0,
                                 std::vector<double>(3), {}, flows,
                                 default_executor()),
                 std::invalid_argument);
    EXPECT_THROW(scheduled_flows(g, alpha, sos_scheme(1.5), 1,
                                 std::vector<double>(4), {}, flows,
                                 default_executor()),
                 std::invalid_argument);
}

} // namespace
} // namespace dlb
