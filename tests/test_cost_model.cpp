// Campaign scheduler: the per-scenario cost model and the cost-balanced
// shard partitioner. The contract under test: partitions are pure functions
// of the spec (so independently launched shard processes agree), they cover
// the expansion exactly once in every mode, and on a heterogeneous
// nodes x rounds sweep the cost-balanced mode's worst shard is strictly
// cheaper than round-robin's — the wall-clock tail the scheduler exists to
// cut.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "campaign/cost_model.hpp"
#include "campaign/spec.hpp"

namespace dlb {
namespace {

using namespace dlb::campaign;

scenario_spec make_spec(std::int64_t nodes, std::int64_t rounds)
{
    scenario_spec spec;
    spec.nodes = nodes;
    spec.rounds = rounds;
    return spec;
}

// The heterogeneous sweep from the acceptance criteria: three node scales
// crossed with three round budgets — a 4096x cost spread between the
// cheapest and most expensive cell, the shape round-robin balances worst
// (the expansion orders costs ascending, so one round-robin shard draws
// the single dominant 65536 x 1600 cell on top of a mid-weight mix).
std::vector<scenario_spec> heterogeneous_sweep()
{
    campaign_spec spec;
    spec.base.rounds = 100;
    spec.axes["nodes"] = {"256", "4096", "65536"};
    spec.axes["rounds"] = {"100", "400", "1600"};
    return expand(spec);
}

TEST(CostModel, GrowsWithNodesAndRounds)
{
    const double base = scenario_cost(make_spec(1024, 100));
    EXPECT_GT(scenario_cost(make_spec(4096, 100)), base);
    EXPECT_GT(scenario_cost(make_spec(1024, 500)), base);
    // Roughly proportional: 4x nodes is ~4x cost (the +1 floor is noise).
    EXPECT_NEAR(scenario_cost(make_spec(4096, 100)) / base, 4.0, 0.1);
}

TEST(CostModel, EngineAndRoundingWeightsOrderAsCalibrated)
{
    scenario_spec randomized = make_spec(1024, 100);
    scenario_spec floor_rounding = randomized;
    floor_rounding.rounding = "floor";
    scenario_spec continuous = randomized;
    continuous.process = "continuous";
    scenario_spec cumulative = randomized;
    cumulative.process = "cumulative";
    scenario_spec v2 = randomized;
    v2.rng_version = 2;

    // bench_micro_step ordering: fused floor sweep < randomized owner pass;
    // continuous (no rounding) < discrete < cumulative (matching baseline);
    // v2 streams cheaper than v1 on randomized rounding.
    EXPECT_LT(scenario_cost(floor_rounding), scenario_cost(randomized));
    EXPECT_LT(scenario_cost(continuous), scenario_cost(randomized));
    EXPECT_GT(scenario_cost(cumulative), scenario_cost(randomized));
    EXPECT_LT(scenario_cost(v2), scenario_cost(randomized));

    // Rounding weights only model the discrete engine's rounding pass.
    scenario_spec continuous_floor = continuous;
    continuous_floor.rounding = "floor";
    EXPECT_EQ(scenario_cost(continuous_floor), scenario_cost(continuous));

    // Zero-round scenarios still cost something (the setup floor).
    EXPECT_GT(scenario_cost(make_spec(1024, 0)), 0.0);
}

TEST(CostModel, RoundRobinPartitionMatchesLegacyAssignment)
{
    const auto scenarios = heterogeneous_sweep();
    const auto shards =
        partition_scenarios(scenarios, 3, shard_balance::round_robin);
    ASSERT_EQ(shards.size(), 3u);
    for (std::size_t s = 0; s < shards.size(); ++s)
        for (const std::int64_t i : shards[s])
            EXPECT_EQ(i % 3, static_cast<std::int64_t>(s));
}

void expect_exact_cover(const std::vector<std::vector<std::int64_t>>& shards,
                        std::size_t count)
{
    std::vector<int> seen(count, 0);
    for (const auto& shard : shards) {
        EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
        for (const std::int64_t i : shard) {
            ASSERT_GE(i, 0);
            ASSERT_LT(static_cast<std::size_t>(i), count);
            ++seen[static_cast<std::size_t>(i)];
        }
    }
    for (const int n : seen) EXPECT_EQ(n, 1);
}

TEST(CostModel, BothModesPartitionTheExpansionExactly)
{
    const auto scenarios = heterogeneous_sweep();
    for (const auto balance : {shard_balance::round_robin, shard_balance::cost})
        for (const std::int64_t n : {1, 2, 4, 7})
            expect_exact_cover(partition_scenarios(scenarios, n, balance),
                               scenarios.size());
    // More shards than scenarios: some shards legitimately end up empty.
    expect_exact_cover(
        partition_scenarios(scenarios, 100, shard_balance::cost),
        scenarios.size());
}

TEST(CostModel, CostBalanceBeatsRoundRobinOnHeterogeneousSweep)
{
    const auto scenarios = heterogeneous_sweep();
    for (const std::int64_t n : {2, 4}) {
        const auto rr =
            partition_scenarios(scenarios, n, shard_balance::round_robin);
        const auto lpt = partition_scenarios(scenarios, n, shard_balance::cost);
        double rr_max = 0.0, lpt_max = 0.0;
        for (const auto& shard : rr)
            rr_max = std::max(rr_max, shard_cost(scenarios, shard));
        for (const auto& shard : lpt)
            lpt_max = std::max(lpt_max, shard_cost(scenarios, shard));
        EXPECT_LT(lpt_max, rr_max)
            << n << "-way LPT should strictly beat round-robin here";
    }
}

TEST(CostModel, PartitionIsDeterministic)
{
    // Equal-cost scenarios everywhere: assignment is decided purely by the
    // deterministic tie-breaks (ascending index onto the lowest shard id),
    // so repeated calls — i.e. independently launched shard processes —
    // must produce the identical partition.
    std::vector<scenario_spec> uniform(12, make_spec(1024, 100));
    const auto a = partition_scenarios(uniform, 5, shard_balance::cost);
    const auto b = partition_scenarios(uniform, 5, shard_balance::cost);
    EXPECT_EQ(a, b);

    const auto scenarios = heterogeneous_sweep();
    EXPECT_EQ(partition_scenarios(scenarios, 4, shard_balance::cost),
              partition_scenarios(scenarios, 4, shard_balance::cost));
}

TEST(CostModel, ParseShardBalance)
{
    EXPECT_EQ(parse_shard_balance("round-robin"), shard_balance::round_robin);
    EXPECT_EQ(parse_shard_balance("cost"), shard_balance::cost);
    EXPECT_THROW(parse_shard_balance("lpt"), std::invalid_argument);
    EXPECT_THROW(parse_shard_balance(""), std::invalid_argument);
    EXPECT_EQ(to_string(shard_balance::cost), "cost");
    EXPECT_EQ(to_string(shard_balance::round_robin), "round-robin");
}

TEST(CostModel, InvalidShardCountThrows)
{
    EXPECT_THROW(
        partition_scenarios(heterogeneous_sweep(), 0, shard_balance::cost),
        std::invalid_argument);
}

} // namespace
} // namespace dlb
