// Sharded campaign execution and resource reuse: shard + merge reports must
// be byte-identical to the unsharded run, and graph-cache / scratch-pool
// runs byte-identical to cold-build runs — the contracts behind splitting a
// 2^20-node discrepancy sweep across machines (specs/) and reassembling one
// canonical report.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/campaign_executor.hpp"
#include "campaign/graph_cache.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"
#include "core/scratch.hpp"

namespace dlb {
namespace {

using namespace dlb::campaign;

// A sweep that crosses every sharing boundary: deterministic and
// seed-dependent topologies, lambda-computing and lambda-free schemes, a
// dynamic workload, several seeds.
campaign_spec shard_spec()
{
    campaign_spec spec;
    spec.name = "shard-determinism";
    spec.base.nodes = 36;
    spec.base.rounds = 60;
    spec.base.tokens_per_node = 50;
    spec.base.workload_rate = 4.0;
    spec.axes["topology"] = {"torus", "random_regular"};
    spec.axes["scheme"] = {"fos", "sos"};
    spec.axes["workload"] = {"static", "poisson"};
    spec.axes["rng_version"] = {"1", "2"};
    spec.axes["seed"] = {"1", "2"};
    return spec;
}

std::string csv_of(const campaign_result& result)
{
    std::ostringstream out;
    write_csv(out, result);
    return out.str();
}

std::string json_of(const campaign_result& result)
{
    std::ostringstream out;
    write_json(out, result);
    return out.str();
}

// Runs the campaign split shard_count ways, writes each shard's CSV to a
// temp file, merges, and returns the merged result.
campaign_result shard_and_merge(const campaign_spec& spec,
                                std::int64_t shard_count,
                                std::vector<std::string>& paths,
                                shard_balance balance = shard_balance::round_robin)
{
    for (std::int64_t s = 0; s < shard_count; ++s) {
        campaign_options options;
        options.threads = 2;
        options.shard_index = s;
        options.shard_count = shard_count;
        options.balance = balance;
        const auto shard = run_campaign(spec, options);
        const std::string path = ::testing::TempDir() + "dlb_shard_" +
                                 to_string(balance) + "_" +
                                 std::to_string(shard_count) + "_" +
                                 std::to_string(s) + ".csv";
        std::ofstream out(path);
        write_csv(out, shard);
        paths.push_back(path);
    }
    return merge_shard_csv(spec, paths);
}

class ShardMergeTest : public ::testing::Test {
protected:
    std::vector<std::string> paths_;
    void TearDown() override
    {
        for (const auto& path : paths_) std::remove(path.c_str());
    }
};

TEST_F(ShardMergeTest, TwoWayMergeIsByteIdenticalToUnsharded)
{
    const campaign_spec spec = shard_spec();
    const auto full = run_campaign(spec, {});
    const auto merged = shard_and_merge(spec, 2, paths_);
    EXPECT_EQ(csv_of(full), csv_of(merged));
    EXPECT_EQ(json_of(full), json_of(merged));
}

TEST_F(ShardMergeTest, FourWayMergeIsByteIdenticalToUnsharded)
{
    const campaign_spec spec = shard_spec();
    const auto full = run_campaign(spec, {});
    const auto merged = shard_and_merge(spec, 4, paths_);
    EXPECT_EQ(csv_of(full), csv_of(merged));
    EXPECT_EQ(json_of(full), json_of(merged));
}

TEST_F(ShardMergeTest, CostBalancedTwoWayMergeIsByteIdenticalToUnsharded)
{
    // Cost-balanced shards own different (non-round-robin) index sets, but
    // global indices ride along in the rows, so the merge reassembles the
    // same canonical bytes — across a sweep heterogeneous in nodes and
    // rounds, where the LPT assignment actually diverges from round-robin.
    campaign_spec spec = shard_spec();
    spec.axes["nodes"] = {"25", "100", "256"};
    spec.axes.erase("workload"); // keep the expansion size reasonable
    const auto full = run_campaign(spec, {});
    const auto merged =
        shard_and_merge(spec, 2, paths_, shard_balance::cost);
    EXPECT_EQ(csv_of(full), csv_of(merged));
    EXPECT_EQ(json_of(full), json_of(merged));
}

TEST_F(ShardMergeTest, CostBalancedFourWayMergeIsByteIdenticalToUnsharded)
{
    campaign_spec spec = shard_spec();
    spec.axes["nodes"] = {"25", "100", "256"};
    spec.axes.erase("workload");
    const auto full = run_campaign(spec, {});
    const auto merged =
        shard_and_merge(spec, 4, paths_, shard_balance::cost);
    EXPECT_EQ(csv_of(full), csv_of(merged));
    EXPECT_EQ(json_of(full), json_of(merged));
}

TEST_F(ShardMergeTest, MixedBalanceModesFailMergeValidation)
{
    // One shard run round-robin, the other cost-balanced: the index sets
    // overlap/miss, and the merge's coverage validation must say so. The
    // sweep is cost-skewed enough that the LPT assignment provably differs
    // from round-robin (one cell dominates, so LPT isolates it on its own
    // shard while round-robin alternates).
    campaign_spec spec;
    spec.name = "mixed-balance";
    spec.base.nodes = 36;
    spec.base.tokens_per_node = 50;
    spec.axes["nodes"] = {"36", "256", "1024"};
    spec.axes["rounds"] = {"50", "300"};
    for (std::int64_t s = 0; s < 2; ++s) {
        campaign_options options;
        options.shard_index = s;
        options.shard_count = 2;
        options.balance =
            s == 0 ? shard_balance::round_robin : shard_balance::cost;
        const auto shard = run_campaign(spec, options);
        const std::string path = ::testing::TempDir() +
                                 "dlb_shard_mixed_balance_" +
                                 std::to_string(s) + ".csv";
        std::ofstream out(path);
        write_csv(out, shard);
        paths_.push_back(path);
    }
    EXPECT_THROW(merge_shard_csv(spec, paths_), std::runtime_error);
}

TEST_F(ShardMergeTest, ShardsPartitionTheExpansion)
{
    const campaign_spec spec = shard_spec();
    const auto count = spec.expected_count();
    std::vector<bool> covered(static_cast<std::size_t>(count), false);
    for (std::int64_t s = 0; s < 3; ++s) {
        campaign_options options;
        options.shard_index = s;
        options.shard_count = 3;
        const auto shard = run_campaign(spec, options);
        for (const auto& r : shard.scenarios) {
            EXPECT_EQ(r.index % 3, s);
            EXPECT_FALSE(covered[static_cast<std::size_t>(r.index)]);
            covered[static_cast<std::size_t>(r.index)] = true;
        }
    }
    for (const bool c : covered) EXPECT_TRUE(c);
}

TEST_F(ShardMergeTest, MergeRejectsMismatchedRecordEvery)
{
    // The sampling stride shapes the report (rounds_to_plateau is read off
    // the recorded series); a shard run with a different --record-every
    // must be rejected, not silently merged into diverging bytes.
    const campaign_spec spec = shard_spec();
    for (std::int64_t s = 0; s < 2; ++s) {
        campaign_options options;
        options.shard_index = s;
        options.shard_count = 2;
        if (s == 1) options.record_every = 7; // shard 0 uses the default
        const auto shard = run_campaign(spec, options);
        const std::string path =
            ::testing::TempDir() + "dlb_shard_stride_" + std::to_string(s) +
            ".csv";
        std::ofstream out(path);
        write_csv(out, shard);
        paths_.push_back(path);
    }
    EXPECT_THROW(merge_shard_csv(spec, paths_), std::runtime_error);
    EXPECT_THROW(merge_shard_csv(spec, paths_, 7), std::runtime_error);
}

TEST_F(ShardMergeTest, MergeHonorsExplicitRecordEvery)
{
    const campaign_spec spec = shard_spec();
    campaign_options options;
    options.record_every = 7;
    const auto full = run_campaign(spec, options);

    for (std::int64_t s = 0; s < 2; ++s) {
        campaign_options shard_options;
        shard_options.record_every = 7;
        shard_options.shard_index = s;
        shard_options.shard_count = 2;
        const auto shard = run_campaign(spec, shard_options);
        const std::string path = ::testing::TempDir() +
                                 "dlb_shard_re7_" + std::to_string(s) + ".csv";
        std::ofstream out(path);
        write_csv(out, shard);
        paths_.push_back(path);
    }
    const auto merged = merge_shard_csv(spec, paths_, 7);
    EXPECT_EQ(csv_of(full), csv_of(merged));
    EXPECT_EQ(json_of(full), json_of(merged));
    // And the default-stride merge rejects these shards.
    EXPECT_THROW(merge_shard_csv(spec, paths_), std::runtime_error);
}

TEST_F(ShardMergeTest, MergeRejectsDuplicateAndMissingScenarios)
{
    const campaign_spec spec = shard_spec();
    (void)shard_and_merge(spec, 2, paths_); // merge of both halves is fine

    // The same shard twice: every scenario of that shard is a duplicate.
    EXPECT_THROW(merge_shard_csv(spec, {paths_[0], paths_[0]}),
                 std::runtime_error);
    // One shard only: the other half is missing.
    EXPECT_THROW(merge_shard_csv(spec, {paths_[0]}), std::runtime_error);
    // A shard of a different campaign: spec columns mismatch.
    campaign_spec other = shard_spec();
    other.base.rounds = 61;
    EXPECT_THROW(merge_shard_csv(other, paths_), std::runtime_error);
}

TEST_F(ShardMergeTest, MergeRejectsMixedRngVersionShards)
{
    // A shard accidentally run with the other stream format must be
    // rejected with a message naming rng_version — its randomized columns
    // are drawn from a different stream and can never reassemble into the
    // canonical report.
    campaign_spec spec = shard_spec();
    spec.axes.erase("rng_version"); // fixed per campaign for this test

    campaign_spec wrong_version = spec;
    wrong_version.base.rng_version = 2;

    for (std::int64_t s = 0; s < 2; ++s) {
        campaign_options options;
        options.shard_index = s;
        options.shard_count = 2;
        const auto shard =
            run_campaign(s == 0 ? spec : wrong_version, options);
        const std::string path = ::testing::TempDir() + "dlb_shard_mixed_" +
                                 std::to_string(s) + ".csv";
        std::ofstream out(path);
        write_csv(out, shard);
        paths_.push_back(path);
    }
    try {
        merge_shard_csv(spec, paths_);
        FAIL() << "mixed-rng_version merge unexpectedly succeeded";
    } catch (const std::runtime_error& rejected) {
        EXPECT_NE(std::string(rejected.what()).find("rng_version"),
                  std::string::npos)
            << "message should name the mismatched field: " << rejected.what();
    }
}

TEST_F(ShardMergeTest, InvalidShardOptionsThrow)
{
    campaign_options options;
    options.shard_count = 0;
    EXPECT_THROW(run_campaign(shard_spec(), options), std::invalid_argument);
    options.shard_count = 2;
    options.shard_index = 2;
    EXPECT_THROW(run_campaign(shard_spec(), options), std::invalid_argument);
}

TEST(ShardSpec, ParseShardNotation)
{
    const auto shard = parse_shard("2/8");
    EXPECT_EQ(shard.index, 2);
    EXPECT_EQ(shard.count, 8);
    EXPECT_EQ(parse_shard("0/1").count, 1);
    EXPECT_THROW(parse_shard("3/2"), std::invalid_argument);
    EXPECT_THROW(parse_shard("-1/2"), std::invalid_argument);
    EXPECT_THROW(parse_shard("1"), std::invalid_argument);
    EXPECT_THROW(parse_shard("1/"), std::invalid_argument);
    EXPECT_THROW(parse_shard("/2"), std::invalid_argument);
    EXPECT_THROW(parse_shard("a/b"), std::invalid_argument);
}

// A bad shard token in a long launch script must point at the flag to fix
// (the PR 5 full-token parsing contract), for every failure class: missing
// slash, zero count, index at/past count, negative tokens, trailing junk.
TEST(ShardSpec, ParseShardFailuresNameTheFlag)
{
    const auto message_of = [](const std::string& text) {
        try {
            parse_shard(text);
        } catch (const std::invalid_argument& failure) {
            return std::string(failure.what());
        }
        return std::string();
    };
    for (const std::string text :
         {"0/0", "9/4", "4/4", "-1/2", "2/-4", "x/2", "1/y", "1/2/3", "1",
          "1/", "/2", " ", "0x1/2", "1/2 extra"}) {
        const std::string message = message_of(text);
        EXPECT_FALSE(message.empty()) << "'" << text << "' was accepted";
        EXPECT_NE(message.find("--shard"), std::string::npos)
            << "'" << text << "' failed without naming the flag: " << message;
    }
    // Inner whitespace is trimmed (launch scripts line-wrap around the
    // slash), full-token parsing still rejects embedded garbage.
    EXPECT_EQ(parse_shard("1 / 4").index, 1);
    EXPECT_EQ(parse_shard("1 / 4").count, 4);
}

TEST(ResourceReuse, WarmRunsAreByteIdenticalToColdRuns)
{
    const campaign_spec spec = shard_spec();

    campaign_options cold;
    cold.reuse_graphs = false;
    cold.pool_scratch = false;
    campaign_options warm; // both reuses on by default
    warm.threads = 4;      // and across the thread axis for good measure

    const auto a = run_campaign(spec, cold);
    const auto b = run_campaign(spec, warm);
    EXPECT_EQ(csv_of(a), csv_of(b));
    EXPECT_EQ(json_of(a), json_of(b));
}

TEST(GraphCache, SharesAcrossSeedsOnlyWhenSeedIndependent)
{
    graph_cache cache;
    // Deterministic family: one instance for the whole seed axis.
    const auto t1 = cache.get("torus", 64, 0.0, 1);
    const auto t2 = cache.get("torus", 64, 0.0, 2);
    EXPECT_EQ(t1.get(), t2.get());
    // Seed-dependent family: distinct instances per seed, shared per seed.
    const auto r1 = cache.get("random_regular", 64, 4.0, 1);
    const auto r2 = cache.get("random_regular", 64, 4.0, 2);
    const auto r1b = cache.get("random_regular", 64, 4.0, 1);
    EXPECT_NE(r1.get(), r2.get());
    EXPECT_EQ(r1.get(), r1b.get());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.graph_misses, 3); // torus, rr seed 1, rr seed 2
    EXPECT_EQ(stats.graph_hits, 2);   // torus seed 2, rr seed 1 again
}

TEST(GraphCache, LambdaComputedOncePerKey)
{
    graph_cache cache;
    int calls = 0;
    const auto compute = [&] {
        ++calls;
        return 0.5;
    };
    EXPECT_DOUBLE_EQ(cache.lambda("k1", compute), 0.5);
    EXPECT_DOUBLE_EQ(cache.lambda("k1", compute), 0.5);
    EXPECT_DOUBLE_EQ(cache.lambda("k2", compute), 0.5);
    EXPECT_EQ(calls, 2);
}

TEST(EngineScratch, ReusesReleasedCapacityZeroed)
{
    engine_scratch scratch;
    auto buffer = scratch.acquire_int(100);
    ASSERT_EQ(buffer.size(), 100u);
    buffer.assign(100, 7);
    const auto* data = buffer.data();
    scratch.release(std::move(buffer));
    EXPECT_EQ(scratch.pooled_count(), 1u);

    // Same allocation comes back, zero-filled, without allocator traffic.
    auto reused = scratch.acquire_int(80);
    EXPECT_EQ(reused.data(), data);
    EXPECT_EQ(reused.size(), 80u);
    for (const auto v : reused) EXPECT_EQ(v, 0);
    EXPECT_EQ(scratch.pooled_count(), 0u);

    // 64-byte alignment for vector loads.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(reused.data()) % 64, 0u);
    auto real = scratch.acquire_real(33);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(real.data()) % 64, 0u);
}

} // namespace
} // namespace dlb
