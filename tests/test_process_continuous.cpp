// Tests for the continuous (idealized) process engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/metrics.hpp"
#include "core/process.hpp"
#include "core/second_order_matrix.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"

namespace dlb {
namespace {

diffusion_config make_config(const graph& g, scheme_params scheme)
{
    return {&g, make_alpha(g, alpha_policy::max_degree_plus_one),
            speed_profile::uniform(g.num_nodes()), scheme};
}

TEST(ContinuousProcess, ConservesTotalLoad)
{
    const graph g = make_torus_2d(5, 5);
    continuous_process proc(make_config(g, fos_scheme()),
                            std::vector<double>(25, 0.0));
    // All load on node 0.
    std::vector<double> load(25, 0.0);
    load[0] = 1000.0;
    continuous_process p2(make_config(g, fos_scheme()), load);
    p2.run(100);
    EXPECT_NEAR(p2.total_load(), 1000.0, 1e-6);
}

TEST(ContinuousProcess, FosMatchesMatrixIteration)
{
    const graph g = make_cycle(7);
    const auto config = make_config(g, fos_scheme());
    std::vector<double> load{10, 0, 0, 5, 0, 0, 6};
    continuous_process proc(config, load);

    const auto m = make_dense_diffusion_matrix(g, config.alpha, config.speeds);
    std::vector<double> expected = load;
    for (int t = 0; t < 20; ++t) {
        proc.step();
        expected = m.multiply(expected);
        for (node_id v = 0; v < 7; ++v)
            EXPECT_NEAR(proc.load()[v], expected[v], 1e-10)
                << "round " << t + 1 << " node " << v;
    }
}

TEST(ContinuousProcess, SosMatchesMtRecursion)
{
    // x(t) = M(t) x(0) with the Muthukrishnan recursion.
    const graph g = make_torus_2d(3, 4);
    const double beta = 1.7;
    const auto config = make_config(g, sos_scheme(beta));
    std::vector<double> load(12, 0.0);
    load[3] = 60.0;
    continuous_process proc(config, load);

    const auto m = make_dense_diffusion_matrix(g, config.alpha, config.speeds);
    m_sequence seq(m, beta);
    for (int t = 1; t <= 15; ++t) {
        proc.step();
        seq.advance();
        const auto expected = seq.current().multiply(load);
        for (node_id v = 0; v < 12; ++v)
            EXPECT_NEAR(proc.load()[v], expected[v], 1e-9)
                << "round " << t << " node " << v;
    }
}

TEST(ContinuousProcess, FosConvergesToAverage)
{
    const graph g = make_torus_2d(4, 4);
    std::vector<double> load(16, 0.0);
    load[0] = 1600.0;
    continuous_process proc(make_config(g, fos_scheme()), load);
    proc.run(2000);
    for (node_id v = 0; v < 16; ++v) EXPECT_NEAR(proc.load()[v], 100.0, 1e-6);
}

TEST(ContinuousProcess, SosConvergesFasterThanFos)
{
    const graph g = make_torus_2d(10, 10);
    const double lambda = torus_2d_lambda(10, 10);
    std::vector<double> load(100, 0.0);
    load[0] = 100000.0;

    continuous_process fos(make_config(g, fos_scheme()), load);
    continuous_process sos(make_config(g, sos_scheme(beta_opt(lambda))), load);
    const int rounds = 120;
    fos.run(rounds);
    sos.run(rounds);

    const auto ideal = std::vector<double>(100, 1000.0);
    const double fos_potential = potential(fos.load(), std::span<const double>(ideal));
    const double sos_potential = potential(sos.load(), std::span<const double>(ideal));
    EXPECT_LT(sos_potential, fos_potential / 10.0);
}

TEST(ContinuousProcess, SosPotentialDecaysAtLambdaRate)
{
    // Equation (30): Phi(t) <= lambda^t * Phi(0).
    const graph g = make_torus_2d(6, 6);
    const double lambda = torus_2d_lambda(6, 6);
    std::vector<double> load(36, 0.0);
    load[0] = 36000.0;
    continuous_process proc(make_config(g, sos_scheme(beta_opt(lambda))), load);

    const std::vector<double> ideal(36, 1000.0);
    const double phi0 = std::sqrt(potential(proc.load(), std::span<const double>(ideal)));
    for (int t = 1; t <= 60; ++t) {
        proc.step();
        const double phi =
            std::sqrt(potential(proc.load(), std::span<const double>(ideal)));
        EXPECT_LE(phi, std::pow(lambda, t) * phi0 * (1.0 + 1e-9))
            << "round " << t;
    }
}

TEST(ContinuousProcess, FosMaxNeverIncreases)
{
    const graph g = make_random_regular_exact(50, 4, 13);
    std::vector<double> load(50, 0.0);
    load[7] = 5000.0;
    continuous_process proc(make_config(g, fos_scheme()), load);
    double previous_max = 5000.0;
    for (int t = 0; t < 200; ++t) {
        proc.step();
        double current_max = 0.0;
        for (const double v : proc.load()) current_max = std::max(current_max, v);
        EXPECT_LE(current_max, previous_max + 1e-9);
        previous_max = current_max;
    }
}

TEST(ContinuousProcess, FosNeverGoesNegativeFromNonNegativeStart)
{
    const graph g = make_star(9);
    std::vector<double> load(9, 0.0);
    load[0] = 90.0;
    continuous_process proc(make_config(g, fos_scheme()), load);
    proc.run(300);
    EXPECT_GE(proc.negative_stats().min_end_of_round_load, -1e-12);
    EXPECT_GE(proc.negative_stats().min_transient_load, -1e-12);
}

TEST(ContinuousProcess, HeterogeneousConvergesToSpeedProportional)
{
    const graph g = make_torus_2d(4, 4);
    const auto speeds = speed_profile::bimodal(16, 0.5, 3.0, 17);
    diffusion_config config{&g, make_alpha(g, alpha_policy::max_degree_plus_one),
                            speeds, fos_scheme()};
    std::vector<double> load(16, 0.0);
    load[0] = 3200.0;
    continuous_process proc(config, load);
    proc.run(4000);
    const auto ideal = speeds.ideal_load(3200.0);
    for (node_id v = 0; v < 16; ++v)
        EXPECT_NEAR(proc.load()[v], ideal[v], 1e-5) << "node " << v;
}

TEST(ContinuousProcess, SwitchSchemeMidRun)
{
    const graph g = make_torus_2d(5, 5);
    const double lambda = torus_2d_lambda(5, 5);
    std::vector<double> load(25, 0.0);
    load[0] = 2500.0;
    continuous_process proc(make_config(g, sos_scheme(beta_opt(lambda))), load);
    proc.run(20);
    proc.set_scheme(fos_scheme());
    proc.run(500);
    for (node_id v = 0; v < 25; ++v) EXPECT_NEAR(proc.load()[v], 100.0, 1e-6);
}

TEST(ContinuousProcess, RoundCounter)
{
    const graph g = make_cycle(5);
    continuous_process proc(make_config(g, fos_scheme()),
                            std::vector<double>(5, 1.0));
    EXPECT_EQ(proc.round(), 0);
    proc.run(7);
    EXPECT_EQ(proc.round(), 7);
}

TEST(ContinuousProcess, ValidatesConfig)
{
    const graph g = make_cycle(5);
    auto config = make_config(g, fos_scheme());
    EXPECT_THROW(continuous_process(config, std::vector<double>(4, 0.0)),
                 std::invalid_argument);
    config.network = nullptr;
    EXPECT_THROW(continuous_process(config, std::vector<double>(5, 0.0)),
                 std::invalid_argument);
}

} // namespace
} // namespace dlb
