// Tests for the eigenvector-impact analyzer (both backends).
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.hpp"
#include "core/beta.hpp"
#include "core/process.hpp"
#include "graph/generators.hpp"
#include "linalg/spectra.hpp"
#include "sim/eigen_impact.hpp"
#include "sim/initial_load.hpp"

namespace dlb {
namespace {

TEST(EigenImpact, TorusBackendConstantLoad)
{
    const auto analyzer = eigen_impact_analyzer::for_torus(6, 6);
    EXPECT_EQ(analyzer.dimension(), 36u);
    const std::vector<double> flat(36, 7.0);
    const auto sample = analyzer.analyze(std::span<const double>(flat));
    EXPECT_NEAR(sample.max_abs_coefficient, 0.0, 1e-9);
}

TEST(EigenImpact, JacobiBackendConstantLoad)
{
    const graph g = make_cycle(12);
    const auto analyzer = eigen_impact_analyzer::for_graph(
        g, make_alpha(g, alpha_policy::max_degree_plus_one));
    const std::vector<double> flat(12, 3.0);
    const auto sample = analyzer.analyze(std::span<const double>(flat));
    EXPECT_NEAR(sample.max_abs_coefficient, 0.0, 1e-9);
}

TEST(EigenImpact, BackendsAgreeOnTorusPerEigenspace)
{
    // Torus eigenspaces are degenerate, so the Jacobi basis is an arbitrary
    // rotation of the Fourier basis within each eigenspace: per-vector
    // coefficients differ, but the projection *norm per eigenspace* is
    // basis-independent. Compare those.
    const node_id w = 5, h = 4;
    const graph g = make_torus_2d(w, h);
    const auto torus = eigen_impact_analyzer::for_torus(w, h);
    const auto jacobi = eigen_impact_analyzer::for_graph(
        g, make_alpha(g, alpha_policy::max_degree_plus_one));

    std::vector<double> load(20, 0.0);
    load[7] = 100.0;
    load[13] = -40.0;
    const auto ca = torus.coefficients(load);
    const auto cb = jacobi.coefficients(load);

    auto group_norms = [](const eigen_impact_analyzer& analyzer,
                          const std::vector<double>& coeffs) {
        std::vector<std::pair<double, double>> groups; // (eigenvalue, norm^2)
        for (std::size_t k = 0; k < coeffs.size(); ++k) {
            const double mu = analyzer.eigenvalue(k);
            if (groups.empty() || std::abs(groups.back().first - mu) > 1e-9)
                groups.emplace_back(mu, 0.0);
            groups.back().second += coeffs[k] * coeffs[k];
        }
        return groups;
    };
    const auto ga = group_norms(torus, ca);
    const auto gb = group_norms(jacobi, cb);
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t i = 0; i < ga.size(); ++i) {
        EXPECT_NEAR(ga[i].first, gb[i].first, 1e-8) << "group " << i;
        EXPECT_NEAR(ga[i].second, gb[i].second, 1e-6 * (1.0 + ga[i].second))
            << "group " << i;
    }
}

TEST(EigenImpact, EigenvaluesSortedDescending)
{
    const auto analyzer = eigen_impact_analyzer::for_torus(5, 5);
    for (std::size_t k = 1; k < analyzer.dimension(); ++k)
        EXPECT_LE(analyzer.eigenvalue(k), analyzer.eigenvalue(k - 1) + 1e-12);
    EXPECT_NEAR(analyzer.eigenvalue(0), 1.0, 1e-12);
}

TEST(EigenImpact, CoefficientDecaysAtEigenvalueRateUnderFos)
{
    // Run FOS; every coefficient must decay by exactly its eigenvalue per
    // round (this is the linear-algebra heart of metric 4).
    const node_id side = 6;
    const graph g = make_torus_2d(side, side);
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()), fos_scheme()};
    continuous_process proc(config, to_continuous(point_load(36, 0, 3600)));
    const auto analyzer = eigen_impact_analyzer::for_torus(side, side);

    auto before = analyzer.coefficients(proc.load());
    for (int t = 0; t < 10; ++t) {
        proc.step();
        const auto after = analyzer.coefficients(proc.load());
        for (std::size_t k = 0; k < after.size(); ++k)
            EXPECT_NEAR(after[k], analyzer.eigenvalue(k) * before[k], 1e-8)
                << "t=" << t << " rank=" << k;
        before = after;
    }
}

TEST(EigenImpact, A4LeadsOnTorusAfterSosConvergesPaperFigure7)
{
    // Miniature of Figure 7: on a torus under SOS, after the bulk mixing
    // rounds the leading coefficient settles on the slowest non-constant
    // eigenspace (ranks 1-4, the paper's a_4 block).
    const node_id side = 10;
    const graph g = make_torus_2d(side, side);
    const double beta = beta_opt(torus_2d_lambda(side, side));
    const diffusion_config config{
        &g, make_alpha(g, alpha_policy::max_degree_plus_one),
        speed_profile::uniform(g.num_nodes()), sos_scheme(beta)};
    continuous_process proc(config, to_continuous(point_load(100, 0, 100000)));
    const auto analyzer = eigen_impact_analyzer::for_torus(side, side);

    proc.run(60); // past the bulk-mixing phase for the 10x10 torus
    const auto sample = analyzer.analyze(proc.load());
    EXPECT_GE(sample.leading_rank, 1u);
    EXPECT_LE(sample.leading_rank, 4u);
    // The leading eigenvalue equals lambda.
    EXPECT_NEAR(analyzer.eigenvalue(sample.leading_rank),
                torus_2d_lambda(side, side), 1e-12);
}

TEST(EigenImpact, IntegerOverloadMatchesDouble)
{
    const auto analyzer = eigen_impact_analyzer::for_torus(4, 4);
    std::vector<std::int64_t> load(16, 0);
    load[3] = 17;
    std::vector<double> as_double(load.begin(), load.end());
    const auto a = analyzer.analyze(std::span<const std::int64_t>(load));
    const auto b = analyzer.analyze(std::span<const double>(as_double));
    EXPECT_DOUBLE_EQ(a.max_abs_coefficient, b.max_abs_coefficient);
    EXPECT_EQ(a.leading_rank, b.leading_rank);
}

TEST(EigenImpact, SizeValidation)
{
    const auto analyzer = eigen_impact_analyzer::for_torus(4, 4);
    EXPECT_THROW(analyzer.analyze(std::span<const double>(std::vector<double>(5))),
                 std::invalid_argument);
    EXPECT_THROW(analyzer.eigenvalue(16), std::invalid_argument);
}

} // namespace
} // namespace dlb
