// Golden determinism suite for the canonical-edge round kernels.
//
// Two bitwise guarantees are pinned here:
//
//  1. The canonical-edge kernels (scheduled_flows computing each edge once
//     and mirroring by negation, round_flows with the fused/canonical
//     mirror) produce bit-for-bit the same output as the pre-refactor
//     two-sided kernels (kept as scheduled_flows_reference /
//     round_flows_reference). A reference pipeline re-implementing the old
//     engine round drives the comparison over real engine trajectories, so
//     every `time_series` a run records is byte-identical to what the old
//     kernel produced: the series is a pure function of the per-round load
//     state, which is compared exactly here.
//
//  2. Engine output is byte-identical across executors: serial_executor and
//     thread_pool with 1, 2 and 8 workers, across discrete/continuous
//     engines, all four roundings, both negative-load policies, and a
//     hybrid-switch Chebyshev long run (>= 4000 rounds, which is only
//     affordable because the engines carry the omega recurrence in O(1)).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "campaign/workload.hpp"
#include "core/alpha.hpp"
#include "obs/obs.hpp"
#include "core/beta.hpp"
#include "core/checkpoint.hpp"
#include "core/diffusion_matrix.hpp"
#include "core/process.hpp"
#include "core/rounding.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "sim/initial_load.hpp"
#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"

namespace dlb {
namespace {

template <class T>
bool bytes_equal(const std::vector<T>& a, const std::vector<T>& b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

template <class T>
bool bytes_equal(std::span<const T> a, const std::vector<T>& b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Byte-level equality of every recorded series field (memcmp, so it also
/// distinguishes -0.0 from +0.0 and would catch any reordered combine).
void expect_series_identical(const time_series& a, const time_series& b,
                             const std::string& label)
{
    EXPECT_TRUE(bytes_equal(a.rounds, b.rounds)) << label;
    EXPECT_TRUE(bytes_equal(a.max_minus_average, b.max_minus_average)) << label;
    EXPECT_TRUE(bytes_equal(a.max_local_difference, b.max_local_difference))
        << label;
    EXPECT_TRUE(bytes_equal(a.potential_over_n, b.potential_over_n)) << label;
    EXPECT_TRUE(bytes_equal(a.min_load, b.min_load)) << label;
    EXPECT_TRUE(bytes_equal(a.min_transient_load, b.min_transient_load)) << label;
    EXPECT_TRUE(bytes_equal(a.deviation_from_twin, b.deviation_from_twin))
        << label;
    EXPECT_TRUE(bytes_equal(a.total_load_error, b.total_load_error)) << label;
    EXPECT_EQ(a.switch_round, b.switch_round) << label;
    EXPECT_EQ(a.total_injected, b.total_injected) << label;
    EXPECT_EQ(a.total_drained, b.total_drained) << label;
    EXPECT_EQ(std::memcmp(&a.negative, &b.negative, sizeof a.negative), 0)
        << label;
    EXPECT_EQ(a.remaining_imbalance, b.remaining_imbalance) << label;
    EXPECT_EQ(a.imbalance_converged, b.imbalance_converged) << label;
}

struct golden_case {
    std::string name;
    graph g;
    speed_profile speeds;
};

std::vector<golden_case> golden_topologies()
{
    std::vector<golden_case> cases;
    cases.push_back({"torus", make_torus_2d(8, 8), speed_profile::uniform(64)});
    cases.push_back(
        {"hypercube", make_hypercube(6), speed_profile::uniform(64)});
    {
        graph g = make_random_regular_cm(60, 5, 17);
        const node_id n = g.num_nodes();
        cases.push_back({"random_regular_zipf_speeds", std::move(g),
                         speed_profile::zipf(n, 1.0, 8.0, 23)});
    }
    return cases;
}

/// One old-style engine round: the exact pre-refactor pipeline built from
/// the retained reference kernels and the (unchanged) apply rule.
struct reference_pipeline {
    const graph& g;
    std::vector<double> alpha;
    speed_profile speeds;
    scheme_params scheme;
    rounding_kind rounding;
    std::uint64_t seed;

    std::vector<std::int64_t> load;
    std::vector<double> x_over_s;
    std::vector<double> scheduled;
    std::vector<std::int64_t> flows;
    std::vector<std::int64_t> prev_int;
    std::vector<double> prev_dbl;
    std::int64_t round = 0;

    reference_pipeline(const graph& graph_, speed_profile speeds_,
                       scheme_params scheme_, rounding_kind rounding_,
                       std::uint64_t seed_, std::vector<std::int64_t> initial)
        : g(graph_),
          alpha(make_alpha(g, alpha_policy::max_degree_plus_one)),
          speeds(std::move(speeds_)),
          scheme(scheme_),
          rounding(rounding_),
          seed(seed_),
          load(std::move(initial))
    {
        const auto half_edges = static_cast<std::size_t>(g.num_half_edges());
        x_over_s.resize(load.size());
        scheduled.assign(half_edges, 0.0);
        flows.assign(half_edges, 0);
        prev_int.assign(half_edges, 0);
        prev_dbl.assign(half_edges, 0.0);
    }

    void step()
    {
        for (node_id v = 0; v < g.num_nodes(); ++v)
            x_over_s[v] = static_cast<double>(load[v]) / speeds.speed(v);
        scheduled_flows_reference(g, alpha, scheme, round, x_over_s, prev_dbl,
                                  scheduled, default_executor());
        round_flows_reference(g, rounding, scheduled, seed, round, flows,
                              default_executor());
        for (node_id v = 0; v < g.num_nodes(); ++v) {
            std::int64_t net_out = 0;
            for (half_edge_id h = g.half_edge_begin(v); h < g.half_edge_end(v);
                 ++h)
                net_out += flows[h];
            load[v] -= net_out;
        }
        std::swap(prev_int, flows);
        for (std::size_t h = 0; h < prev_int.size(); ++h)
            prev_dbl[h] = static_cast<double>(prev_int[h]);
        ++round;
    }
};

TEST(GoldenKernel, CanonicalMatchesTwoSidedKernelBitwise)
{
    // Drive the real engine and the reference pipeline in lock-step over
    // real trajectories: loads, scheduled flows and rounded flows must stay
    // bit-for-bit identical on every round, for every rounding scheme, on
    // three topology families (one heterogeneous).
    for (auto& tc : golden_topologies()) {
        for (const rounding_kind rounding :
             {rounding_kind::randomized, rounding_kind::floor,
              rounding_kind::nearest, rounding_kind::bernoulli_edge}) {
            const double lambda = compute_lambda(
                tc.g, make_alpha(tc.g, alpha_policy::max_degree_plus_one),
                tc.speeds);
            const scheme_params scheme = sos_scheme(beta_opt(lambda));
            const auto initial =
                point_load(tc.g.num_nodes(), 0, tc.g.num_nodes() * 500LL);

            diffusion_config config{
                &tc.g, make_alpha(tc.g, alpha_policy::max_degree_plus_one),
                tc.speeds, scheme};
            discrete_process engine(config, initial, rounding, 42);
            reference_pipeline reference(tc.g, tc.speeds, scheme, rounding, 42,
                                         initial);

            for (int t = 0; t < 120; ++t) {
                engine.step();
                reference.step();
                ASSERT_TRUE(bytes_equal(engine.load(), reference.load))
                    << tc.name << " " << to_string(rounding) << " round " << t;
                ASSERT_TRUE(
                    bytes_equal(engine.last_scheduled_flows(), reference.scheduled))
                    << tc.name << " " << to_string(rounding) << " round " << t;
                ASSERT_TRUE(bytes_equal(engine.previous_flows(), reference.prev_int))
                    << tc.name << " " << to_string(rounding) << " round " << t;
            }
        }
    }
}

TEST(GoldenKernel, ChebyshevTrajectoryMatchesReferenceBitwise)
{
    // Same lock-step comparison under the Chebyshev per-round omega — this
    // also pins the incremental scheme_beta_state against the pure
    // recurrence the reference kernel evaluates from scratch each round.
    const graph g = make_torus_2d(8, 8);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const double lambda =
        compute_lambda(g, make_alpha(g, alpha_policy::max_degree_plus_one), speeds);
    const scheme_params scheme = chebyshev_scheme(lambda);
    const auto initial = point_load(g.num_nodes(), 0, 64000);

    diffusion_config config{&g, make_alpha(g, alpha_policy::max_degree_plus_one),
                            speeds, scheme};
    discrete_process engine(config, initial, rounding_kind::randomized, 9);
    reference_pipeline reference(g, speeds, scheme, rounding_kind::randomized, 9,
                                 initial);
    for (int t = 0; t < 200; ++t) {
        engine.step();
        reference.step();
        ASSERT_TRUE(bytes_equal(engine.load(), reference.load)) << t;
        ASSERT_TRUE(bytes_equal(engine.last_scheduled_flows(), reference.scheduled))
            << t;
    }
}

TEST(GoldenKernel, ContinuousScheduledFlowsMatchReferenceBitwise)
{
    // The continuous engine exercises the signed-zero corner cases (exact
    // cancellation near convergence) that integer-valued discrete flows
    // cannot: compare the kernels directly on the continuous engine's own
    // evolving state.
    const graph g = make_torus_2d(8, 8);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const scheme_params scheme = sos_scheme(1.6);

    diffusion_config config{&g, alpha, speeds, scheme};
    continuous_process engine(config,
                              to_continuous(point_load(g.num_nodes(), 0, 64000)));

    std::vector<double> x(engine.load().begin(), engine.load().end());
    std::vector<double> canonical(static_cast<std::size_t>(g.num_half_edges()));
    std::vector<double> reference(canonical.size());
    for (int t = 0; t < 2000; ++t) {
        engine.step();
        x.assign(engine.load().begin(), engine.load().end());
        const auto prev = engine.previous_flows();
        scheduled_flows(g, alpha, scheme, t + 1, x, prev, canonical,
                        default_executor());
        scheduled_flows_reference(g, alpha, scheme, t + 1, x, prev, reference,
                                  default_executor());
        ASSERT_TRUE(bytes_equal(std::span<const double>(canonical), reference))
            << "round " << t;
    }
}

struct determinism_grid_case {
    process_kind process;
    rounding_kind rounding;
    negative_load_policy policy;
    rng_version rng;
};

TEST(GoldenDeterminism, SeriesByteIdenticalAcrossExecutorsBothRngVersions)
{
    const graph g = make_torus_2d(12, 12);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::bimodal(g.num_nodes(), 0.25, 4.0, 5);
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 100LL);

    std::vector<determinism_grid_case> grid;
    for (const auto rng : {rng_version::v1, rng_version::v2})
        for (const auto rounding :
             {rounding_kind::randomized, rounding_kind::floor,
              rounding_kind::nearest, rounding_kind::bernoulli_edge})
            for (const auto policy :
                 {negative_load_policy::allow, negative_load_policy::prevent})
                grid.push_back({process_kind::discrete, rounding, policy, rng});
    grid.push_back({process_kind::continuous, rounding_kind::randomized,
                    negative_load_policy::allow, rng_version::v1});

    for (const auto& cell : grid) {
        experiment_config config;
        config.diffusion = {&g, alpha, speeds, sos_scheme(1.7)};
        config.process = cell.process;
        config.rounding = cell.rounding;
        config.policy = cell.policy;
        config.rng = cell.rng;
        config.seed = 77;
        config.rounds = 300;
        config.record_every = 7;

        const std::string label =
            std::string(cell.process == process_kind::continuous ? "continuous"
                                                                 : "discrete") +
            "/" + std::string(to_string(cell.rounding)) + "/" +
            (cell.policy == negative_load_policy::prevent ? "prevent" : "allow") +
            "/rng" + std::string(to_string(cell.rng));

        config.exec = nullptr;
        const time_series serial = run_experiment(config, initial);
        for (const unsigned workers : {1u, 2u, 8u}) {
            thread_pool pool(workers);
            config.exec = &pool;
            const time_series pooled = run_experiment(config, initial);
            expect_series_identical(serial, pooled,
                                    label + " workers=" + std::to_string(workers));
        }
    }
}

TEST(GoldenDeterminism, SaveResumeSeriesByteIdenticalAcrossGrid)
{
    // The checkpoint contract over the same grid as the executor test:
    // a checkpointing run records the identical series (snapshots are pure
    // output), and resuming from the last snapshot finishes with the
    // identical series — both compared byte-for-byte against the
    // uninterrupted run, for both RNG stream formats and all three engines.
    const graph g = make_torus_2d(12, 12);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::bimodal(g.num_nodes(), 0.25, 4.0, 5);
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 100LL);

    std::vector<determinism_grid_case> grid;
    for (const auto rng : {rng_version::v1, rng_version::v2})
        for (const auto rounding :
             {rounding_kind::randomized, rounding_kind::floor,
              rounding_kind::nearest, rounding_kind::bernoulli_edge})
            grid.push_back({process_kind::discrete, rounding,
                            negative_load_policy::allow, rng});
    grid.push_back({process_kind::discrete, rounding_kind::randomized,
                    negative_load_policy::prevent, rng_version::v1});
    grid.push_back({process_kind::discrete, rounding_kind::bernoulli_edge,
                    negative_load_policy::prevent, rng_version::v2});
    grid.push_back({process_kind::continuous, rounding_kind::randomized,
                    negative_load_policy::allow, rng_version::v1});
    grid.push_back({process_kind::cumulative, rounding_kind::randomized,
                    negative_load_policy::allow, rng_version::v1});

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto& cell = grid[i];
        experiment_config config;
        config.diffusion = {&g, alpha, speeds, sos_scheme(1.7)};
        config.process = cell.process;
        config.rounding = cell.rounding;
        config.policy = cell.policy;
        config.rng = cell.rng;
        config.seed = 77;
        config.rounds = 300;
        config.record_every = 7;

        const std::string label =
            "cell " + std::to_string(i) + " (" +
            std::string(to_string(cell.rounding)) + "/rng" +
            std::string(to_string(cell.rng)) + ")";
        const std::string path = testing::TempDir() + "dlb_golden_resume_" +
                                 std::to_string(i) + ".ckpt";

        const time_series full = run_experiment(config, initial);

        config.checkpoint_every = 90;
        config.checkpoint_path = path;
        const time_series checkpointed = run_experiment(config, initial);
        expect_series_identical(full, checkpointed,
                                label + " with checkpointing on");

        // Snapshots landed at rounds 90, 180 and 270; the file holds the
        // last one. Resume must replay rounds 270..300 bit-for-bit.
        const engine_checkpoint snapshot = read_checkpoint_file(path);
        EXPECT_EQ(snapshot.round, 270) << label;

        experiment_config resume_config = config;
        resume_config.checkpoint_every = 0;
        resume_config.checkpoint_path.clear();
        resume_config.resume = &snapshot;
        const time_series resumed = run_experiment(resume_config, initial);
        expect_series_identical(full, resumed, label + " resumed");

        std::remove(path.c_str());
    }
}

TEST(GoldenDeterminism, SeriesByteIdenticalWithObservabilityEnabled)
{
    // The observability layer's zero-perturbation contract: re-running the
    // executor x engine x rounding grid with tracing AND metrics active must
    // reproduce the unobserved series byte-for-byte. Instrumentation reads
    // clocks and bumps counters but never touches engine state or RNG
    // streams, and this is where that claim is pinned.
    const graph g = make_torus_2d(12, 12);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::bimodal(g.num_nodes(), 0.25, 4.0, 5);
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 100LL);

    std::vector<determinism_grid_case> grid;
    for (const auto rounding :
         {rounding_kind::randomized, rounding_kind::floor,
          rounding_kind::nearest, rounding_kind::bernoulli_edge})
        grid.push_back({process_kind::discrete, rounding,
                        negative_load_policy::allow, rng_version::v1});
    grid.push_back({process_kind::discrete, rounding_kind::randomized,
                    negative_load_policy::prevent, rng_version::v2});
    grid.push_back({process_kind::continuous, rounding_kind::randomized,
                    negative_load_policy::allow, rng_version::v1});

    auto make_config = [&](const determinism_grid_case& cell) {
        experiment_config config;
        config.diffusion = {&g, alpha, speeds, sos_scheme(1.7)};
        config.process = cell.process;
        config.rounding = cell.rounding;
        config.policy = cell.policy;
        config.rng = cell.rng;
        config.seed = 77;
        config.rounds = 200;
        config.record_every = 7;
        return config;
    };

    // Baseline: the whole grid with observability off (the default).
    ASSERT_FALSE(obs::tracing());
    ASSERT_FALSE(obs::metrics_enabled());
    std::vector<time_series> baseline;
    for (const auto& cell : grid) {
        experiment_config config = make_config(cell);
        config.exec = nullptr;
        baseline.push_back(run_experiment(config, initial));
    }

    // Same grid again, serial and pooled, inside a live session with both
    // the trace writer and the metrics registry hot.
    {
        obs::session_options options;
        options.trace_path = testing::TempDir() + "dlb_golden_obs_trace.json";
        options.metrics_path = testing::TempDir() + "dlb_golden_obs_metrics.jsonl";
        options.collect_metrics = true;
        const obs::session session(options);
        ASSERT_TRUE(obs::tracing());
        ASSERT_TRUE(obs::metrics_enabled());

        for (std::size_t i = 0; i < grid.size(); ++i) {
            experiment_config config = make_config(grid[i]);
            const std::string label =
                std::string(grid[i].process == process_kind::continuous
                                ? "continuous"
                                : "discrete") +
                "/" + std::string(to_string(grid[i].rounding)) + "/rng" +
                std::string(to_string(grid[i].rng)) + " (observed)";

            config.exec = nullptr;
            expect_series_identical(baseline[i], run_experiment(config, initial),
                                    label + " serial");
            for (const unsigned workers : {2u, 8u}) {
                thread_pool pool(workers);
                config.exec = &pool;
                expect_series_identical(
                    baseline[i], run_experiment(config, initial),
                    label + " workers=" + std::to_string(workers));
            }
        }
    }
    ASSERT_FALSE(obs::tracing());
    ASSERT_FALSE(obs::metrics_enabled());
}

TEST(GoldenDeterminism, RngVersionsProduceDistinctButValidTrajectories)
{
    // The two formats are different streams (trajectories diverge) but the
    // same scheme: conservation holds exactly under both.
    const graph g = make_torus_2d(8, 8);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    diffusion_config config{&g, alpha, speeds, sos_scheme(1.7)};
    const auto initial = point_load(g.num_nodes(), 0, 64000);

    discrete_process v1_engine(config, initial, rounding_kind::randomized, 5,
                               negative_load_policy::allow, nullptr, nullptr,
                               rng_version::v1);
    discrete_process v2_engine(config, initial, rounding_kind::randomized, 5,
                               negative_load_policy::allow, nullptr, nullptr,
                               rng_version::v2);
    bool diverged = false;
    for (int t = 0; t < 50; ++t) {
        v1_engine.step();
        v2_engine.step();
        ASSERT_TRUE(v1_engine.verify_conservation()) << t;
        ASSERT_TRUE(v2_engine.verify_conservation()) << t;
        if (!bytes_equal(v1_engine.load(),
                         std::vector<std::int64_t>(v2_engine.load().begin(),
                                                   v2_engine.load().end())))
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "v2 unexpectedly reproduced the v1 stream";
}

TEST(GoldenDeterminism, V2ConservationAcrossEnginesRoundingsWorkloads)
{
    // Conservation-modulo-injection under rng_version = 2, across the
    // discrete/cumulative engines x all four roundings x all three dynamic
    // workload models (the workload draws also come from the v2 streams).
    const graph g = make_torus_2d(10, 10);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const auto initial = point_load(g.num_nodes(), 0, g.num_nodes() * 50LL);

    const campaign::workload_spec workloads[] = {
        {"poisson", 6.0, 0, 0},
        {"burst", 0.0, 40, 11},
        {"drain", 3.0, 0, 0},
    };

    for (const auto process : {process_kind::discrete, process_kind::cumulative}) {
        for (const auto rounding :
             {rounding_kind::randomized, rounding_kind::floor,
              rounding_kind::nearest, rounding_kind::bernoulli_edge}) {
            if (process == process_kind::cumulative &&
                rounding != rounding_kind::randomized)
                continue; // the cumulative baseline has a fixed rounding
            for (const auto& wl : workloads) {
                const auto hook = campaign::make_workload(
                    wl, g.num_nodes(), mix64(31, 0x776b6c64), rng_version::v2);

                experiment_config config;
                config.diffusion = {&g, alpha, speeds, fos_scheme()};
                config.process = process;
                config.rounding = rounding;
                config.rng = rng_version::v2;
                config.seed = 31;
                config.rounds = 120;
                config.record_every = 10;
                config.workload = hook.get();

                const time_series series = run_experiment(config, initial);
                const std::string label =
                    std::string(process == process_kind::cumulative
                                    ? "cumulative"
                                    : "discrete") +
                    "/" + std::string(to_string(rounding)) + "/" + wl.kind;
                // Exact token conservation modulo the injected/drained
                // totals, at every recorded round.
                for (const double error : series.total_load_error)
                    EXPECT_EQ(error, 0.0) << label;
                if (wl.kind != "drain") {
                    EXPECT_GT(series.total_injected, 0) << label;
                } else {
                    EXPECT_GT(series.total_drained, 0) << label;
                }
            }
        }
    }
}

TEST(GoldenDeterminism, HybridChebyshevLongRunByteIdentical)
{
    // >= 4000 rounds of Chebyshev followed by a hybrid switch to FOS. Under
    // the old O(T^2) scheme_beta_for_round-per-round recurrence this run
    // alone would re-execute ~T^2/2 omega iterations; with the incremental
    // state it is O(T) and cheap enough for the suite.
    const graph g = make_torus_2d(8, 8);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const double lambda = compute_lambda(g, alpha, speeds);

    experiment_config config;
    config.diffusion = {&g, alpha, speeds, chebyshev_scheme(lambda)};
    config.rounding = rounding_kind::randomized;
    config.seed = 13;
    config.rounds = 4500;
    config.record_every = 50;
    config.switching = switch_policy::at(4000);
    config.switch_to = fos_scheme();

    const auto initial = point_load(g.num_nodes(), 0, 64000);
    config.exec = nullptr;
    const time_series serial = run_experiment(config, initial);
    EXPECT_EQ(serial.switch_round, 4000);

    for (const unsigned workers : {2u, 8u}) {
        thread_pool pool(workers);
        config.exec = &pool;
        expect_series_identical(serial, run_experiment(config, initial),
                                "hybrid-chebyshev workers=" +
                                    std::to_string(workers));
    }
}

TEST(GoldenDeterminism, PreventPolicyClipRepairKeepsAntisymmetry)
{
    // Force heavy clipping (tiny loads, aggressive SOS beta) and verify the
    // targeted twin repair: flows stay antisymmetric, conservation holds,
    // and serial/pooled runs agree bitwise.
    const graph g = make_random_regular_cm(80, 4, 3);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    diffusion_config config{&g, alpha, speeds, sos_scheme(1.9)};
    const auto initial = point_load(g.num_nodes(), 0, 3 * g.num_nodes());

    discrete_process serial_engine(config, initial, rounding_kind::randomized, 21,
                                   negative_load_policy::prevent);
    thread_pool pool(8);
    discrete_process pooled_engine(config, initial, rounding_kind::randomized, 21,
                                   negative_load_policy::prevent, &pool);

    for (int t = 0; t < 150; ++t) {
        serial_engine.step();
        pooled_engine.step();
        ASSERT_TRUE(bytes_equal(serial_engine.load(),
                                std::vector<std::int64_t>(
                                    pooled_engine.load().begin(),
                                    pooled_engine.load().end())))
            << t;
        const auto flows = serial_engine.previous_flows();
        for (half_edge_id h = 0; h < g.num_half_edges(); ++h)
            ASSERT_EQ(flows[h], -flows[g.twin(h)]) << "h=" << h << " t=" << t;
        ASSERT_TRUE(serial_engine.verify_conservation()) << t;
    }
    EXPECT_GT(serial_engine.clipped_tokens(), 0);
    EXPECT_EQ(serial_engine.clipped_tokens(), pooled_engine.clipped_tokens());
}

TEST(GoldenDeterminism, ParallelReduceCombinesInFixedOrder)
{
    // Floating-point sums are order-sensitive; the fixed chunking + ordered
    // combine must make them bitwise reproducible for any executor.
    const std::int64_t n = 100003;
    std::vector<double> values(static_cast<std::size_t>(n));
    xoshiro256ss rng{123};
    for (auto& v : values) v = rng.next_double() * 2.0 - 1.0;

    auto sum_with = [&](executor& exec) {
        return exec.parallel_reduce(
            n, 0.0,
            [&](std::int64_t begin, std::int64_t end) {
                double acc = 0.0;
                for (std::int64_t i = begin; i < end; ++i)
                    acc += values[static_cast<std::size_t>(i)];
                return acc;
            },
            [](double a, double b) { return a + b; });
    };

    const double serial = sum_with(default_executor());
    for (const unsigned workers : {1u, 2u, 3u, 8u}) {
        thread_pool pool(workers);
        const double pooled = sum_with(pool);
        EXPECT_EQ(std::memcmp(&serial, &pooled, sizeof serial), 0)
            << "workers=" << workers;
    }
}

} // namespace
} // namespace dlb
