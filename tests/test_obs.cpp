// Tests for the observability layer (src/obs): trace-event JSON output,
// deterministic metrics aggregation, session lifecycle, and run manifests.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "sim/thread_pool.hpp"

namespace dlb {
namespace {

std::string read_file(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Minimal structural JSON validation: scans the document with a
/// string-aware bracket matcher and checks it is one complete value with
/// balanced {} / [] and properly terminated strings. Not a full parser —
/// the CI smoke job runs python's json.load on real traces — but enough to
/// catch the classic writer bugs (trailing comma never closes the array,
/// unescaped quote, truncated document).
void expect_balanced_json(const std::string& text)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped) escaped = false;
            else if (c == '\\') escaped = true;
            else if (c == '"') in_string = false;
            continue;
        }
        switch (c) {
        case '"': in_string = true; break;
        case '{': stack.push_back('}'); break;
        case '[': stack.push_back(']'); break;
        case '}':
        case ']':
            ASSERT_FALSE(stack.empty()) << "unmatched closer '" << c << "'";
            ASSERT_EQ(stack.back(), c) << "mismatched closer '" << c << "'";
            stack.pop_back();
            break;
        default: break;
        }
    }
    EXPECT_FALSE(in_string) << "unterminated string";
    EXPECT_TRUE(stack.empty()) << "unclosed brackets: " << stack.size();
}

/// Extracts the numeric value of `"key":` immediately following `from` in
/// the event object that starts at `event_pos`.
double event_number(const std::string& text, std::size_t event_pos,
                    const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = text.find(needle, event_pos);
    EXPECT_NE(pos, std::string::npos) << "missing " << key;
    return std::stod(text.substr(pos + needle.size()));
}

class ObsSessionTest : public ::testing::Test {
protected:
    std::string trace_path_ = ::testing::TempDir() + "dlb_obs_test_trace.json";
    std::string metrics_path_ =
        ::testing::TempDir() + "dlb_obs_test_metrics.jsonl";
    void TearDown() override
    {
        std::remove(trace_path_.c_str());
        std::remove(metrics_path_.c_str());
    }
};

TEST_F(ObsSessionTest, TraceFileIsValidNestableTraceEventJson)
{
    obs::set_thread_name("obs-test-main");
    {
        obs::session_options options;
        options.trace_path = trace_path_;
        const obs::session session(options);
        ASSERT_TRUE(obs::tracing());

        const obs::trace_span outer("test", "outer_phase");
        {
            const obs::trace_span inner("test", std::string("inner_phase"));
            volatile std::int64_t sink = 0; // measurable inner duration
            for (int i = 0; i < 10000; ++i) sink = sink + i;
        }
        obs::trace_instant("test", "marker");
    }
    ASSERT_FALSE(obs::tracing());

    const std::string text = read_file(trace_path_);
    expect_balanced_json(text);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);

    // The instant event and the thread-name metadata made it out.
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(text.find("obs-test-main"), std::string::npos);

    // Both spans are complete events and the inner one nests inside the
    // outer: outer.ts <= inner.ts and inner end <= outer end. Timestamps
    // are exact integer-microsecond text (three-digit ns fraction), so the
    // containment comparison is not at the mercy of double rounding.
    const auto outer_pos = text.find("\"name\":\"outer_phase\"");
    const auto inner_pos = text.find("\"name\":\"inner_phase\"");
    ASSERT_NE(outer_pos, std::string::npos);
    ASSERT_NE(inner_pos, std::string::npos);
    const auto outer_obj = text.rfind('{', outer_pos);
    const auto inner_obj = text.rfind('{', inner_pos);
    EXPECT_NE(text.find("\"ph\":\"X\"", outer_obj), std::string::npos);

    const double outer_ts = event_number(text, outer_obj, "ts");
    const double outer_dur = event_number(text, outer_obj, "dur");
    const double inner_ts = event_number(text, inner_obj, "ts");
    const double inner_dur = event_number(text, inner_obj, "dur");
    EXPECT_LE(outer_ts, inner_ts);
    EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
    EXPECT_GE(inner_dur, 0.0);
    EXPECT_GE(outer_dur, inner_dur);
}

TEST_F(ObsSessionTest, MetricsAggregationDeterministicAcrossThreadCounts)
{
    // The same work at 1, 2 and 8 workers must snapshot to identical metric
    // values: counters are order-independent integer sums over stripes,
    // histogram buckets depend only on the recorded values.
    const std::int64_t items = 5000;
    auto run_at = [&](unsigned workers) {
        obs::session_options options;
        options.collect_metrics = true;
        const obs::session session(options);
        EXPECT_TRUE(obs::metrics_enabled());
        EXPECT_FALSE(obs::tracing()); // no trace path: metrics only

        thread_pool pool(workers);
        pool.parallel_tasks(items, [](std::int64_t begin, std::int64_t end) {
            obs::counter& c = obs::registry_counter("test.obs.items");
            obs::histogram& h = obs::registry_histogram("test.obs.values");
            for (std::int64_t i = begin; i < end; ++i) {
                c.add(1);
                h.record(i);
            }
        });
        // Keep only the metrics this test owns: the pool registers its own
        // metrics lazily (and their values are timing-dependent by design),
        // so they are not part of the determinism contract checked here.
        std::vector<obs::metric_value> mine;
        for (auto& m : obs::snapshot_metrics())
            if (m.name.rfind("test.obs.", 0) == 0) mine.push_back(std::move(m));
        return mine;
    };

    const auto baseline = run_at(1);
    ASSERT_FALSE(baseline.empty());
    // The snapshot is sorted by name — the deterministic dump order.
    for (std::size_t i = 1; i < baseline.size(); ++i)
        EXPECT_LT(baseline[i - 1].name, baseline[i].name);

    bool saw_counter = false;
    bool saw_histogram = false;
    for (const auto& m : baseline) {
        if (m.name == "test.obs.items") {
            saw_counter = true;
            EXPECT_FALSE(m.is_histogram);
            EXPECT_EQ(m.value, items);
        }
        if (m.name == "test.obs.values") {
            saw_histogram = true;
            EXPECT_TRUE(m.is_histogram);
            EXPECT_EQ(m.value, items);
            EXPECT_EQ(m.sum, items * (items - 1) / 2);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_histogram);

    for (const unsigned workers : {2u, 8u}) {
        const auto snapshot = run_at(workers);
        ASSERT_EQ(snapshot.size(), baseline.size()) << workers;
        for (std::size_t i = 0; i < snapshot.size(); ++i) {
            EXPECT_EQ(snapshot[i].name, baseline[i].name);
            EXPECT_EQ(snapshot[i].is_histogram, baseline[i].is_histogram);
            EXPECT_EQ(snapshot[i].value, baseline[i].value)
                << snapshot[i].name << " workers=" << workers;
            EXPECT_EQ(snapshot[i].sum, baseline[i].sum)
                << snapshot[i].name << " workers=" << workers;
            EXPECT_EQ(snapshot[i].buckets, baseline[i].buckets)
                << snapshot[i].name << " workers=" << workers;
        }
    }
}

TEST_F(ObsSessionTest, MetricsJsonlSortedAndDisabledOutsideSession)
{
    {
        obs::session_options options;
        options.metrics_path = metrics_path_;
        const obs::session session(options);
        obs::registry_counter("test.obs.zz").add(3);
        obs::registry_counter("test.obs.aa").add(2);
    }
    const std::string text = read_file(metrics_path_);
    const auto aa = text.find("\"name\":\"test.obs.aa\"");
    const auto zz = text.find("\"name\":\"test.obs.zz\"");
    ASSERT_NE(aa, std::string::npos);
    ASSERT_NE(zz, std::string::npos);
    EXPECT_LT(aa, zz) << "JSONL must be sorted by metric name";
    EXPECT_NE(text.find("\"type\":\"counter\",\"value\":2"), std::string::npos);
    // Each line is one standalone JSON object.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        if (!line.empty()) expect_balanced_json(line);

    // Outside any session every instrumentation point is inert: adds are
    // dropped, so the counters still hold their session-final values.
    ASSERT_FALSE(obs::metrics_enabled());
    obs::registry_counter("test.obs.aa").add(100);
    EXPECT_EQ(obs::registry_counter("test.obs.aa").value(), 2);
}

TEST_F(ObsSessionTest, NestedSessionThrowsAndUnopenablePathFails)
{
    obs::session_options outer;
    outer.collect_metrics = true;
    const obs::session session(outer);
    EXPECT_THROW(obs::session(obs::session_options{}), std::logic_error);
}

TEST(ObsSession, UnopenableTraceFileThrowsAndReleasesTheSessionSlot)
{
    obs::session_options bad;
    bad.trace_path = "/nonexistent-dir-for-dlb-obs-test/trace.json";
    EXPECT_THROW(obs::session{bad}, std::runtime_error);
    obs::session_options bad_metrics;
    bad_metrics.metrics_path = "/nonexistent-dir-for-dlb-obs-test/m.jsonl";
    EXPECT_THROW(obs::session{bad_metrics}, std::runtime_error);

    // A failed construction must not leave the singleton slot occupied.
    obs::session_options ok;
    ok.collect_metrics = true;
    EXPECT_NO_THROW(obs::session{ok});
    EXPECT_FALSE(obs::metrics_enabled());
}

// Runs a short-period meter, applies `setup` to it, lets the ticker print
// a few heartbeats, and returns everything written after the meter is torn
// down — the stream is only ever read once the ticker thread has joined,
// so there is no reader/writer race on the ostringstream.
template <class Setup>
std::string heartbeat_lines_after(Setup setup)
{
    std::ostringstream out;
    {
        obs::progress_meter::options options;
        options.period_seconds = 0.005;
        options.out = &out;
        obs::progress_meter meter(options, /*total_scenarios=*/12,
                                  /*total_cost=*/100.0);
        setup(meter);
        // ~20 periods: several heartbeats land after setup's state did.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return out.str();
}

// All-zero predicted cost (every completed scenario priced at zero, or
// only failures so far) has no rate to extrapolate: the heartbeat must say
// `eta=?`, never the inf/nan a raw done_seconds_/done_cost_ would print.
TEST(ObsProgress, EtaIsQuestionMarkWhenCompletedCostIsZero)
{
    const std::string lines =
        heartbeat_lines_after([](obs::progress_meter& meter) {
            meter.scenario_done(/*predicted_cost=*/0.0, /*wall_seconds=*/0.5,
                                /*failed=*/false);
        });
    EXPECT_NE(lines.find("eta=?"), std::string::npos) << lines;
    EXPECT_EQ(lines.find("inf"), std::string::npos) << lines;
    EXPECT_EQ(lines.find("nan"), std::string::npos) << lines;
}

// Before any completion there is no rate either — but there also must be
// no eta field at all (nothing to extrapolate from), matching the
// pre-guard behavior.
TEST(ObsProgress, NoEtaBeforeFirstCompletion)
{
    const std::string lines = heartbeat_lines_after([](obs::progress_meter&) {
    });
    EXPECT_FALSE(lines.empty());
    EXPECT_EQ(lines.find("eta="), std::string::npos) << lines;
}

// Queue-mode heartbeats append the sweep-wide view: global completions
// against the campaign total plus this worker's lease activity.
TEST(ObsProgress, QueueViewRendersInHeartbeat)
{
    const std::string lines =
        heartbeat_lines_after([](obs::progress_meter& meter) {
            meter.set_queue_view(/*queue_done=*/7, /*queue_leased=*/3,
                                 /*stolen=*/1, /*re_leased=*/2);
        });
    EXPECT_NE(lines.find("queue: done=7/12"), std::string::npos) << lines;
    EXPECT_NE(lines.find("leased=3"), std::string::npos) << lines;
    EXPECT_NE(lines.find("stolen=1"), std::string::npos) << lines;
    EXPECT_NE(lines.find("re-leased=2"), std::string::npos) << lines;
}

TEST(ObsHistogram, PowerOfTwoBucketsByBitWidth)
{
    obs::session_options options;
    options.collect_metrics = true;
    const obs::session session(options);

    obs::histogram& h = obs::registry_histogram("test.obs.buckets");
    h.record(0);  // bucket 0
    h.record(1);  // bucket 1
    h.record(2);  // bucket 2
    h.record(3);  // bucket 2
    h.record(4);  // bucket 3
    h.record(7);  // bucket 3
    h.record(8);  // bucket 4
    h.record(-5); // clamped to 0 -> bucket 0
    EXPECT_EQ(h.count(), 8);
    EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 7 + 8 + 0);
    EXPECT_EQ(h.bucket(0), 2);
    EXPECT_EQ(h.bucket(1), 1);
    EXPECT_EQ(h.bucket(2), 2);
    EXPECT_EQ(h.bucket(3), 2);
    EXPECT_EQ(h.bucket(4), 1);
}

// -- manifests ----------------------------------------------------------------

obs::run_manifest shard_manifest(int index)
{
    obs::run_manifest m;
    m.set("campaign", "demo_sweep");
    m.set("spec_hash", "9f86d081884c7d65");
    m.set("scenario_count", "24");
    m.set("record_every", "7");
    m.set("shard_count", "2");
    m.set("shard_balance", "cost");
    m.set("rng_version", "2");
    m.set("shard_index", std::to_string(index));
    m.set("host", "node" + std::to_string(index));
    return m;
}

const std::vector<std::string> kMustMatch = {
    "campaign",    "spec_hash",     "scenario_count", "record_every",
    "shard_count", "shard_balance", "rng_version"};

TEST(ObsManifest, RoundTripsThroughWriteAndParse)
{
    obs::run_manifest m = shard_manifest(0);
    m.set("args", "--campaign demo.spec --shard 0/2");
    m.shards.push_back(shard_manifest(0));
    m.shards.push_back(shard_manifest(1));

    std::stringstream io;
    obs::write_manifest(io, m);
    const obs::run_manifest parsed = obs::parse_manifest(io, "roundtrip");

    EXPECT_EQ(parsed.fields, m.fields);
    ASSERT_EQ(parsed.shards.size(), 2u);
    EXPECT_EQ(parsed.shards[0].fields, m.shards[0].fields);
    EXPECT_EQ(parsed.shards[1].fields, m.shards[1].fields);
    EXPECT_EQ(parsed.get("spec_hash"), "9f86d081884c7d65");
    EXPECT_EQ(parsed.get("absent_key"), "");
    EXPECT_FALSE(parsed.has("absent_key"));
}

TEST(ObsManifest, SetReplacesAndSanitizesNewlines)
{
    obs::run_manifest m;
    m.set("key", "first");
    m.set("key", "second");
    ASSERT_EQ(m.fields.size(), 1u);
    EXPECT_EQ(m.get("key"), "second");
    m.set("multi", "line one\nline two");
    EXPECT_EQ(m.get("multi"), "line one line two");
}

TEST(ObsManifest, ParseRejectsBadHeaderAndMalformedLines)
{
    {
        std::stringstream in("campaign = no_header\n");
        EXPECT_THROW(obs::parse_manifest(in, "ctx"), std::runtime_error);
    }
    {
        std::stringstream in("# dlb run manifest v999\nk = v\n");
        EXPECT_THROW(obs::parse_manifest(in, "ctx"), std::runtime_error);
    }
    {
        std::stringstream in("# dlb run manifest v1\nnot a key value line\n");
        EXPECT_THROW(obs::parse_manifest(in, "ctx"), std::runtime_error);
    }
}

TEST(ObsManifest, MergeEmbedsShardsWhenConsistent)
{
    const std::vector<obs::run_manifest> shards = {shard_manifest(0),
                                                   shard_manifest(1)};
    const obs::run_manifest merged = obs::merge_manifests(shards, kMustMatch);
    EXPECT_EQ(merged.get("spec_hash"), "9f86d081884c7d65");
    EXPECT_EQ(merged.get("shard_count"), "2");
    ASSERT_EQ(merged.shards.size(), 2u);
    EXPECT_EQ(merged.shards[0].get("shard_index"), "0");
    EXPECT_EQ(merged.shards[1].get("shard_index"), "1");
    // Per-shard fields (host) stay out of the merged top level.
    EXPECT_FALSE(merged.has("host"));
}

TEST(ObsManifest, MixedMergeRejectedNamingTheDifferingField)
{
    std::vector<obs::run_manifest> shards = {shard_manifest(0),
                                             shard_manifest(1)};
    shards[1].set("spec_hash", "deadbeefdeadbeef");
    try {
        obs::merge_manifests(shards, kMustMatch);
        FAIL() << "merge accepted shards from different campaigns";
    } catch (const std::runtime_error& rejected) {
        const std::string what = rejected.what();
        EXPECT_NE(what.find("spec_hash"), std::string::npos) << what;
        EXPECT_NE(what.find("9f86d081884c7d65"), std::string::npos) << what;
        EXPECT_NE(what.find("deadbeefdeadbeef"), std::string::npos) << what;
    }
}

} // namespace
} // namespace dlb
