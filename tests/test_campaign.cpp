// Tests for the campaign subsystem: spec expansion, the scenario registry,
// spec-file parsing, and thread-count-independent campaign reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>

#include "campaign/campaign_executor.hpp"
#include "campaign/registry.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"
#include "graph/algorithms.hpp"

namespace dlb {
namespace {

using namespace dlb::campaign;

TEST(CampaignSpec, FieldRoundTripForEveryField)
{
    scenario_spec spec;
    for (const auto& field : field_names()) {
        const std::string before = get_field(spec, field);
        set_field(spec, field, before);
        EXPECT_EQ(get_field(spec, field), before) << field;
    }
    set_field(spec, "topology", "hypercube");
    EXPECT_EQ(spec.topology, "hypercube");
    set_field(spec, "nodes", "4096");
    EXPECT_EQ(spec.nodes, 4096);
    set_field(spec, "beta", "1.5");
    EXPECT_DOUBLE_EQ(spec.beta, 1.5);
    set_field(spec, "seed", "18446744073709551615"); // UINT64_MAX survives
    EXPECT_EQ(spec.seed, 18446744073709551615ULL);
    EXPECT_THROW(set_field(spec, "no_such_field", "x"), std::invalid_argument);
    EXPECT_THROW(set_field(spec, "nodes", "not-a-number"), std::invalid_argument);
    EXPECT_THROW(get_field(spec, "no_such_field"), std::invalid_argument);
}

TEST(CampaignSpec, RngVersionValidatesEagerly)
{
    scenario_spec spec;
    EXPECT_EQ(spec.rng_version, 1); // v1 is the pinned default
    set_field(spec, "rng_version", "2");
    EXPECT_EQ(spec.rng_version, 2);
    set_field(spec, "rng_version", "1");
    EXPECT_EQ(spec.rng_version, 1);

    // Unknown versions are rejected at parse time with a message naming
    // the valid set — not at scenario resolution deep inside a sweep.
    for (const char* bad : {"3", "0", "-1", "v2", ""}) {
        try {
            set_field(spec, "rng_version", bad);
            FAIL() << "rng_version '" << bad << "' unexpectedly accepted";
        } catch (const std::invalid_argument& rejected) {
            EXPECT_NE(std::string(rejected.what()).find("rng_version"),
                      std::string::npos)
                << rejected.what();
        }
    }
    EXPECT_EQ(spec.rng_version, 1); // failed sets leave the spec untouched

    // Programmatic specs bypass set_field; run_scenario re-validates and
    // reports the error in the result row instead of throwing.
    scenario_spec bad_spec;
    bad_spec.nodes = 16;
    bad_spec.rounds = 5;
    bad_spec.rng_version = 3;
    const auto result = run_scenario(bad_spec, 0, 1);
    EXPECT_NE(result.error.find("rng_version"), std::string::npos)
        << result.error;
}

TEST(CampaignSpec, RngVersionTagsLabelOnlyForV2)
{
    scenario_spec spec;
    const std::string v1_label = scenario_label(spec);
    EXPECT_EQ(v1_label.find("rng"), std::string::npos)
        << "v1 labels must stay byte-identical to pre-version builds";
    spec.rng_version = 2;
    EXPECT_NE(scenario_label(spec).find("-rng2"), std::string::npos);
}

TEST(CampaignSpec, ExpansionCountIsAxisProduct)
{
    campaign_spec spec;
    EXPECT_EQ(spec.expected_count(), 1);
    EXPECT_EQ(expand(spec).size(), 1u);

    spec.axes["topology"] = {"torus", "hypercube", "cycle"};
    spec.axes["scheme"] = {"fos", "sos"};
    spec.axes["seed"] = {"1", "2"};
    EXPECT_EQ(spec.expected_count(), 12);
    const auto scenarios = expand(spec);
    ASSERT_EQ(scenarios.size(), 12u);

    // Axes iterate key-sorted (scheme, seed, topology), last key fastest.
    EXPECT_EQ(scenarios[0].scheme, "fos");
    EXPECT_EQ(scenarios[0].seed, 1u);
    EXPECT_EQ(scenarios[0].topology, "torus");
    EXPECT_EQ(scenarios[1].topology, "hypercube");
    EXPECT_EQ(scenarios[2].topology, "cycle");
    EXPECT_EQ(scenarios[3].seed, 2u);
    EXPECT_EQ(scenarios[6].scheme, "sos");
}

TEST(CampaignSpec, ExpansionRejectsBadAxes)
{
    campaign_spec spec;
    spec.axes["scheme"] = {};
    EXPECT_THROW(expand(spec), std::invalid_argument);

    spec.axes.clear();
    spec.axes["no_such_field"] = {"x"};
    EXPECT_THROW(expand(spec), std::invalid_argument);

    spec.axes.clear();
    spec.axes["seed"] = std::vector<std::string>(1001, "1");
    spec.axes["rounds"] = std::vector<std::string>(1001, "10");
    EXPECT_THROW(expand(spec), std::invalid_argument); // > 1e6 scenarios
}

TEST(CampaignSpec, SplitListTrims)
{
    const auto items = split_list(" torus , hypercube ,cycle,, ");
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0], "torus");
    EXPECT_EQ(items[1], "hypercube");
    EXPECT_EQ(items[2], "cycle");
}

TEST(CampaignSpec, ParseCampaignFileFormat)
{
    std::istringstream in(
        "# demo campaign\n"
        "name = demo\n"
        "nodes = 144\n"
        "rounds = 50   # trailing comment\n"
        "seed = 9\n"
        "sweep.scheme = fos, sos\n"
        "seeds = 3\n"
        "\n");
    const campaign_spec spec = parse_campaign(in);
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.base.nodes, 144);
    EXPECT_EQ(spec.base.rounds, 50);
    ASSERT_EQ(spec.axes.count("scheme"), 1u);
    ASSERT_EQ(spec.axes.count("seed"), 1u);
    const auto& seeds = spec.axes.at("seed");
    ASSERT_EQ(seeds.size(), 3u);
    EXPECT_EQ(seeds[0], "9");
    EXPECT_EQ(seeds[2], "11");
    EXPECT_EQ(spec.expected_count(), 6);

    std::istringstream bad("nodes 144\n");
    EXPECT_THROW(parse_campaign(bad), std::invalid_argument);
}

TEST(CampaignSpec, SeedsShorthandHonorsLaterSeedLine)
{
    // The "seeds" axis is built after the whole file parses, so a later
    // "seed = N" line still anchors it.
    std::istringstream in(
        "seeds = 3\n"
        "seed = 100\n");
    const campaign_spec spec = parse_campaign(in);
    const auto& seeds = spec.axes.at("seed");
    ASSERT_EQ(seeds.size(), 3u);
    EXPECT_EQ(seeds[0], "100");
    EXPECT_EQ(seeds[2], "102");
}

TEST(CampaignRegistry, EveryTopologyBuilds)
{
    for (const auto& family : topology_names()) {
        const graph g = build_topology(family, 64, 0.0, 77);
        EXPECT_GT(g.num_nodes(), 0) << family;
        EXPECT_GT(g.num_edges(), 0) << family;
        EXPECT_TRUE(is_connected(g)) << family;
    }
    EXPECT_THROW(build_topology("no_such_family", 64, 0.0, 1),
                 std::invalid_argument);
}

TEST(CampaignRegistry, TopologySizesResolve)
{
    EXPECT_EQ(build_topology("torus", 64, 0.0, 1).num_nodes(), 64);     // 8x8
    EXPECT_EQ(build_topology("grid", 100, 0.0, 1).num_nodes(), 100);    // 10x10
    EXPECT_EQ(build_topology("hypercube", 64, 0.0, 1).num_nodes(), 64); // 2^6
    EXPECT_EQ(build_topology("cycle", 64, 0.0, 1).num_nodes(), 64);
    EXPECT_EQ(build_topology("path", 64, 0.0, 1).num_nodes(), 64);
    EXPECT_EQ(build_topology("complete", 16, 0.0, 1).num_nodes(), 16);
    EXPECT_EQ(build_topology("star", 64, 0.0, 1).num_nodes(), 64);
    // random_regular honors an explicit degree via topology_param.
    const graph r = build_topology("random_regular", 64, 4.0, 1);
    EXPECT_LE(r.max_degree(), 4);
}

TEST(CampaignRegistry, EveryLoadPatternConservesTotal)
{
    const node_id n = 50;
    const std::int64_t per_node = 10;
    for (const auto& pattern : load_pattern_names()) {
        const auto load = build_initial_load(pattern, n, per_node, 123);
        ASSERT_EQ(load.size(), static_cast<std::size_t>(n)) << pattern;
        EXPECT_EQ(std::accumulate(load.begin(), load.end(), std::int64_t{0}),
                  per_node * n)
            << pattern;
        for (const auto value : load) EXPECT_GE(value, 0) << pattern;
    }
    EXPECT_THROW(build_initial_load("no_such_pattern", n, per_node, 1),
                 std::invalid_argument);
}

TEST(CampaignRegistry, PatternShapes)
{
    const auto point = build_initial_load("point", 10, 5, 1);
    EXPECT_EQ(point[0], 50);
    EXPECT_EQ(point[5], 0);

    const auto balanced = build_initial_load("balanced", 10, 5, 1);
    for (const auto v : balanced) EXPECT_EQ(v, 5);

    const auto wave = build_initial_load("wavefront", 10, 5, 1);
    EXPECT_GT(wave[0], wave[9]);
    EXPECT_EQ(wave[9], 0);

    const auto corner = build_initial_load("adversarial_corner", 100, 5, 1);
    for (node_id v = 10; v < 100; ++v) EXPECT_EQ(corner[v], 0);

    // Patterns with randomness are deterministic in the seed.
    EXPECT_EQ(build_initial_load("bimodal", 40, 7, 9),
              build_initial_load("bimodal", 40, 7, 9));
    EXPECT_EQ(build_initial_load("random", 40, 7, 9),
              build_initial_load("random", 40, 7, 9));
}

TEST(CampaignExecutor, ScenarioErrorIsCapturedNotThrown)
{
    scenario_spec spec;
    spec.topology = "no_such_family";
    const auto result = run_scenario(spec, 0, 1);
    EXPECT_FALSE(result.error.empty());
}

TEST(CampaignExecutor, SingleScenarioSummaries)
{
    scenario_spec spec;
    spec.topology = "torus";
    spec.nodes = 36;
    spec.scheme = "sos";
    spec.rounds = 400;
    spec.tokens_per_node = 100;
    const auto result = run_scenario(spec, 3, 1);
    ASSERT_TRUE(result.error.empty()) << result.error;
    EXPECT_EQ(result.index, 3);
    EXPECT_EQ(result.nodes, 36);
    EXPECT_GT(result.beta, 1.0);
    EXPECT_GE(result.lambda, 0.0);
    EXPECT_EQ(result.initial_total, 3600);
    EXPECT_TRUE(result.conservation_ok);
    EXPECT_TRUE(result.imbalance_converged);
    EXPECT_GE(result.rounds_to_plateau, 0);
    EXPECT_LT(result.final_max_minus_average,
              static_cast<double>(result.initial_total));
}

campaign_spec determinism_spec()
{
    campaign_spec spec;
    spec.name = "determinism";
    spec.base.nodes = 36;
    spec.base.rounds = 80;
    spec.base.tokens_per_node = 50;
    spec.axes["topology"] = {"torus", "hypercube", "cycle"};
    spec.axes["scheme"] = {"fos", "sos"};
    spec.axes["workload"] = {"static", "poisson"};
    spec.base.workload_rate = 5.0;
    spec.axes["seed"] = {"1", "2"};
    return spec;
}

TEST(CampaignExecutor, ReportsAreThreadCountIndependent)
{
    const campaign_spec spec = determinism_spec();

    campaign_options serial;
    serial.threads = 1;
    campaign_options parallel;
    parallel.threads = 4;

    const auto a = run_campaign(spec, serial);
    const auto b = run_campaign(spec, parallel);
    ASSERT_EQ(a.scenarios.size(), 24u);
    ASSERT_EQ(b.scenarios.size(), 24u);

    std::ostringstream json_a, json_b, csv_a, csv_b;
    write_json(json_a, a);
    write_json(json_b, b);
    write_csv(csv_a, a);
    write_csv(csv_b, b);
    EXPECT_EQ(json_a.str(), json_b.str());
    EXPECT_EQ(csv_a.str(), csv_b.str());
}

TEST(CampaignExecutor, EngineThreadsKeepReportsByteIdentical)
{
    // In-engine parallelism (one kernel pool shared by serially executed
    // scenarios) must not change a single byte of the reports.
    const campaign_spec spec = determinism_spec();

    campaign_options serial;
    serial.threads = 1;
    campaign_options engine_parallel;
    engine_parallel.threads = 4; // forced back to 1 by engine_threads != 1
    engine_parallel.engine_threads = 3;

    const auto a = run_campaign(spec, serial);
    const auto b = run_campaign(spec, engine_parallel);
    ASSERT_EQ(a.scenarios.size(), b.scenarios.size());

    std::ostringstream json_a, json_b;
    write_json(json_a, a);
    write_json(json_b, b);
    EXPECT_EQ(json_a.str(), json_b.str());
}

TEST(CampaignExecutor, ConservationHoldsAcrossTheSweep)
{
    const auto result = run_campaign(determinism_spec(), {});
    for (const auto& r : result.scenarios) {
        ASSERT_TRUE(r.error.empty()) << r.label << ": " << r.error;
        EXPECT_TRUE(r.conservation_ok) << r.label;
    }
}

TEST(CampaignExecutor, SeriesDirWritesPerRoundCurves)
{
    campaign_spec spec;
    spec.base.nodes = 16;
    spec.base.rounds = 30;
    spec.base.scheme = "fos";
    spec.axes["rounding"] = {"randomized", "floor"};

    campaign_options options;
    options.record_every = 1;
    options.series_dir = ::testing::TempDir() + "dlb_campaign_series";
    const auto result = run_campaign(spec, options);

    for (const auto& r : result.scenarios) {
        ASSERT_TRUE(r.error.empty()) << r.error;
        const std::string path = options.series_dir + "/" +
                                 std::to_string(r.index) + "_" + r.label +
                                 ".csv";
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::string line;
        std::size_t lines = 0;
        while (std::getline(in, line)) ++lines;
        EXPECT_EQ(lines, 1u + 31u); // header + rounds 0..30
        std::filesystem::remove(path);
    }
    std::filesystem::remove(options.series_dir);
}

TEST(CampaignReport, CsvShapeMatchesHeader)
{
    const auto result = run_campaign(determinism_spec(), {});
    std::ostringstream out;
    write_csv(out, result);
    std::istringstream in(out.str());
    std::string line;
    std::size_t lines = 0;
    const auto columns = csv_header().size();
    while (std::getline(in, line)) {
        ++lines;
        // Column count by comma counting; no cell in this campaign embeds
        // commas (labels and enum names are comma-free by construction).
        const auto commas =
            static_cast<std::size_t>(std::count(line.begin(), line.end(), ','));
        EXPECT_EQ(commas + 1, columns);
    }
    EXPECT_EQ(lines, 1 + result.scenarios.size());
}

TEST(CampaignReport, JsonMentionsAggregateAndScenarios)
{
    campaign_spec spec;
    spec.name = "tiny";
    spec.base.nodes = 16;
    spec.base.rounds = 20;
    spec.base.scheme = "fos";
    const auto result = run_campaign(spec, {});
    std::ostringstream out;
    write_json(out, result);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"name\": \"tiny\""), std::string::npos);
    EXPECT_NE(text.find("\"aggregate\""), std::string::npos);
    EXPECT_NE(text.find("\"scenarios\""), std::string::npos);
    EXPECT_NE(text.find("\"conservation_ok\": true"), std::string::npos);
}

} // namespace
} // namespace dlb
