// Checkpointed engine state with byte-identical resume.
//
// Four contracts are pinned here:
//
//  1. Round-trip exactness: save_checkpoint -> serialize -> parse ->
//     restore_checkpoint reproduces every engine field bit-for-bit, and a
//     restored engine's subsequent trajectory is bitwise identical to the
//     engine it was saved from.
//
//  2. Resume byte-identity: a campaign run that checkpoints, and a second
//     invocation resuming from the snapshot, both produce reports
//     byte-identical to the uninterrupted run — across discrete /
//     continuous / cumulative engines, all four roundings, both RNG stream
//     formats and the poisson / burst / drain workload models.
//
//  3. Strict rejection: a snapshot that does not match the run it is fed
//     to (spec hash, seed, rng_version, rounding, policy, record_every,
//     engine kind, round range, load shape) is refused with an error
//     naming the field — and a corrupted snapshot file (eight shapes,
//     mirroring the lambda-sidecar battery) never parses.
//
//  4. Windowed sampling (measure_windows): window 0 with W = rounds -
//     start_round reproduces the uninterrupted run's final discrepancy
//     exactly; aggregates are consistent; non-discrete snapshots and
//     degenerate options are rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign_executor.hpp"
#include "campaign/report.hpp"
#include "campaign/spec.hpp"
#include "core/alpha.hpp"
#include "core/checkpoint.hpp"
#include "core/process.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "sim/initial_load.hpp"
#include "sim/runner.hpp"

namespace dlb {
namespace {

using namespace dlb::campaign;

// One small-but-busy scenario: random initial load, an SOS -> FOS switch
// mid-run and (per test) a dynamic workload, so a snapshot taken at round
// 40 carries nontrivial scheme, hybrid, tracker and conservation state.
campaign_spec checkpoint_spec()
{
    campaign_spec spec;
    spec.name = "checkpoint";
    spec.base.nodes = 36;
    spec.base.rounds = 60;
    spec.base.scheme = "sos";
    spec.base.load_pattern = "random";
    spec.base.tokens_per_node = 200;
    spec.base.switch_mode = "at_round";
    spec.base.switch_value = 20;
    spec.base.seed = 7;
    return spec;
}

std::string csv_of(const campaign_result& result)
{
    std::ostringstream out;
    write_csv(out, result);
    return out.str();
}

std::string json_of(const campaign_result& result)
{
    std::ostringstream out;
    write_json(out, result);
    return out.str();
}

std::string read_binary(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_binary(const std::string& path, const std::string& bytes)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bytes;
}

void expect_contains(const std::string& message, const std::string& needle)
{
    EXPECT_NE(message.find(needle), std::string::npos)
        << "message \"" << message << "\" does not name \"" << needle << "\"";
}

/// Runs `fn`, which must throw; returns the exception message.
template <class Fn>
std::string thrown_message(Fn&& fn)
{
    try {
        fn();
    } catch (const std::exception& error) {
        return error.what();
    }
    ADD_FAILURE() << "expected an exception, none was thrown";
    return {};
}

class CheckpointTest : public ::testing::Test {
protected:
    std::string dir_ = ::testing::TempDir() + "dlb_checkpoint_test";
    void SetUp() override
    {
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string snapshot_path(const campaign_spec& spec,
                              std::int64_t index = 0) const
    {
        const auto scenarios = expand(spec);
        return dir_ + "/" + std::to_string(index) + "_" +
               scenario_label(scenarios[static_cast<std::size_t>(index)]) +
               ".ckpt";
    }
};

// ---------------------------------------------------------------------------
// Resume byte-identity across the engine grid (campaign level).
// ---------------------------------------------------------------------------

struct resume_cell {
    const char* process;
    const char* rounding;
    const char* workload;
    std::int64_t rng;
};

TEST_F(CheckpointTest, ResumeByteIdenticalAcrossEngineGrid)
{
    // Every dimension value appears: 3 engines, 4 roundings, rng 1|2,
    // poisson/burst/drain (cycled through the discrete cells, fixed
    // pairings elsewhere — the cross product would be 72 cells for no
    // added coverage).
    std::vector<resume_cell> grid;
    const char* workloads[] = {"poisson", "burst", "drain"};
    int next_workload = 0;
    for (const char* rounding :
         {"randomized", "floor", "nearest", "bernoulli_edge"})
        for (const std::int64_t rng : {1, 2})
            grid.push_back({"discrete", rounding,
                            workloads[next_workload++ % 3], rng});
    for (const char* workload : workloads)
        grid.push_back({"continuous", "randomized", workload, 1});
    grid.push_back({"cumulative", "randomized", "poisson", 1});
    grid.push_back({"cumulative", "randomized", "drain", 2});

    for (const auto& cell : grid) {
        campaign_spec spec = checkpoint_spec();
        spec.base.process = cell.process;
        spec.base.rounding = cell.rounding;
        spec.base.rng_version = cell.rng;
        spec.base.workload = cell.workload;
        if (spec.base.workload == "poisson") {
            spec.base.workload_rate = 3.0;
        } else if (spec.base.workload == "drain") {
            spec.base.workload_rate = 2.0;
        } else {
            spec.base.workload_amount = 120;
            spec.base.workload_period = 15;
        }
        SCOPED_TRACE(std::string(cell.process) + "/" + cell.rounding + "/" +
                     cell.workload + "/rng" + std::to_string(cell.rng));

        // Uninterrupted reference.
        const auto full = run_campaign(spec, {});

        // Checkpointing is pure output: the report does not change.
        campaign_options with_snapshots;
        with_snapshots.checkpoint_every = 40;
        with_snapshots.checkpoint_dir = dir_;
        const auto checkpointed = run_campaign(spec, with_snapshots);
        EXPECT_EQ(csv_of(full), csv_of(checkpointed))
            << "checkpointing changed the report bytes";

        const std::string path = snapshot_path(spec);
        const engine_checkpoint snapshot = read_checkpoint_file(path);
        EXPECT_EQ(snapshot.round, 40);
        EXPECT_EQ(snapshot.scenario_index, 0);
        EXPECT_EQ(snapshot.rng_version, cell.rng);
        EXPECT_EQ(std::string(to_string(snapshot.engine)), cell.process);

        // Resume from round 40 and compare the whole report byte-for-byte.
        campaign_options resume;
        resume.resume_path = path;
        const auto resumed = run_campaign(spec, resume);
        EXPECT_EQ(csv_of(full), csv_of(resumed))
            << "resumed CSV differs from the uninterrupted run";
        EXPECT_EQ(json_of(full), json_of(resumed))
            << "resumed JSON differs from the uninterrupted run";
    }
}

// ---------------------------------------------------------------------------
// Round-trip exactness (engine level).
// ---------------------------------------------------------------------------

TEST(CheckpointRoundTrip, DiscreteStateSurvivesSerializeParseExactly)
{
    const graph g = make_torus_2d(6, 6);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::bimodal(g.num_nodes(), 0.25, 4.0, 5);
    const diffusion_config diffusion{&g, alpha, speeds, sos_scheme(1.7)};
    const auto initial = point_load(g.num_nodes(), 0, 3600);

    discrete_process engine(diffusion, initial, rounding_kind::randomized, 9);
    engine.run(37);

    engine_checkpoint checkpoint;
    checkpoint.spec_hash = 0xfeedbeefcafef00dULL;
    checkpoint.scenario_index = 3;
    checkpoint.rng_version = 1;
    checkpoint.seed = 9;
    checkpoint.round = engine.round();
    checkpoint.rng_check = checkpoint_rng_check(1, 9, engine.round());
    checkpoint.engine = checkpoint_engine::discrete;
    checkpoint.record_every = 7;
    engine.save_checkpoint(checkpoint.discrete);

    const std::string image = serialize_checkpoint(checkpoint);
    const engine_checkpoint parsed = parse_checkpoint(image);

    EXPECT_EQ(parsed.spec_hash, checkpoint.spec_hash);
    EXPECT_EQ(parsed.scenario_index, checkpoint.scenario_index);
    EXPECT_EQ(parsed.rng_version, checkpoint.rng_version);
    EXPECT_EQ(parsed.seed, checkpoint.seed);
    EXPECT_EQ(parsed.rng_check, checkpoint.rng_check);
    EXPECT_EQ(parsed.engine, checkpoint.engine);
    EXPECT_EQ(parsed.round, checkpoint.round);
    EXPECT_EQ(parsed.record_every, checkpoint.record_every);
    EXPECT_EQ(parsed.discrete.load, checkpoint.discrete.load);
    EXPECT_EQ(parsed.discrete.previous_flows,
              checkpoint.discrete.previous_flows);
    EXPECT_EQ(parsed.discrete.round, checkpoint.discrete.round);
    EXPECT_EQ(parsed.discrete.scheme.kind, checkpoint.discrete.scheme.kind);
    EXPECT_EQ(parsed.discrete.scheme.beta, checkpoint.discrete.scheme.beta);
    EXPECT_EQ(parsed.discrete.scheme.lambda,
              checkpoint.discrete.scheme.lambda);
    EXPECT_EQ(parsed.discrete.scheme.rounds_in_scheme,
              checkpoint.discrete.scheme.rounds_in_scheme);
    EXPECT_EQ(parsed.discrete.scheme.omega, checkpoint.discrete.scheme.omega);
    EXPECT_EQ(parsed.discrete.initial_total, checkpoint.discrete.initial_total);
    EXPECT_EQ(parsed.discrete.external_total,
              checkpoint.discrete.external_total);
    EXPECT_EQ(parsed.discrete.clipped_tokens,
              checkpoint.discrete.clipped_tokens);
    EXPECT_EQ(std::memcmp(&parsed.discrete.negative,
                          &checkpoint.discrete.negative,
                          sizeof checkpoint.discrete.negative),
              0);

    // Serialization is a fixed point: re-serializing the parsed snapshot
    // reproduces the file image byte-for-byte.
    EXPECT_EQ(serialize_checkpoint(parsed), image);

    // A fresh engine seeded with a *different* initial distribution,
    // restored from the snapshot, walks the identical trajectory.
    const auto other = point_load(g.num_nodes(), g.num_nodes() - 1, 3600);
    discrete_process resumed(diffusion, other, rounding_kind::randomized, 9);
    resumed.restore_checkpoint(parsed.discrete);
    ASSERT_EQ(resumed.round(), engine.round());
    for (int i = 0; i < 15; ++i) {
        engine.step();
        resumed.step();
    }
    const auto a = engine.load();
    const auto b = resumed.load();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof a[0]), 0)
        << "restored engine diverged from the original";
    EXPECT_TRUE(resumed.verify_conservation());
}

TEST(CheckpointRoundTrip, CumulativeStateSurvivesSerializeParseExactly)
{
    const graph g = make_torus_2d(6, 6);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const diffusion_config diffusion{&g, alpha, speeds, sos_scheme(1.7)};
    const auto initial = point_load(g.num_nodes(), 0, 3600);

    cumulative_process engine(diffusion, initial);
    engine.run(23);

    engine_checkpoint checkpoint;
    checkpoint.seed = 1;
    checkpoint.round = engine.round();
    checkpoint.rng_check = checkpoint_rng_check(1, 1, engine.round());
    checkpoint.engine = checkpoint_engine::cumulative;
    engine.save_checkpoint(checkpoint.cumulative);

    const engine_checkpoint parsed =
        parse_checkpoint(serialize_checkpoint(checkpoint));
    EXPECT_EQ(parsed.cumulative.load, checkpoint.cumulative.load);
    EXPECT_EQ(parsed.cumulative.cumulative_continuous,
              checkpoint.cumulative.cumulative_continuous);
    EXPECT_EQ(parsed.cumulative.cumulative_discrete,
              checkpoint.cumulative.cumulative_discrete);
    EXPECT_EQ(parsed.cumulative.twin.load, checkpoint.cumulative.twin.load);
    EXPECT_EQ(parsed.cumulative.twin.previous_flows,
              checkpoint.cumulative.twin.previous_flows);

    cumulative_process resumed(diffusion, initial);
    resumed.restore_checkpoint(parsed.cumulative);
    ASSERT_EQ(resumed.round(), engine.round());
    for (int i = 0; i < 15; ++i) {
        engine.step();
        resumed.step();
    }
    const auto a = engine.load();
    const auto b = resumed.load();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof a[0]), 0);
    EXPECT_TRUE(resumed.verify_conservation());
    EXPECT_LE(resumed.max_cumulative_error(), 0.5);
}

// ---------------------------------------------------------------------------
// Mismatch rejection, naming the field (runner level).
// ---------------------------------------------------------------------------

TEST(CheckpointResumeValidation, MismatchesThrowNamingTheField)
{
    const graph g = make_torus_2d(6, 6);
    const auto alpha = make_alpha(g, alpha_policy::max_degree_plus_one);
    const auto speeds = speed_profile::uniform(g.num_nodes());
    const auto initial = point_load(g.num_nodes(), 0, 3600);
    const std::string path =
        ::testing::TempDir() + "dlb_checkpoint_mismatch.ckpt";

    experiment_config config;
    config.diffusion = {&g, alpha, speeds, sos_scheme(1.7)};
    config.seed = 11;
    config.rounds = 50;
    config.record_every = 1;
    config.checkpoint_every = 20;
    config.checkpoint_path = path;
    run_experiment(config, initial);

    const engine_checkpoint snapshot = read_checkpoint_file(path);
    ASSERT_EQ(snapshot.round, 40);
    std::filesystem::remove(path);

    experiment_config base = config;
    base.checkpoint_every = 0;
    base.checkpoint_path.clear();
    base.resume = &snapshot;
    run_experiment(base, initial); // control: the matching config resumes

    const auto message_for = [&](const experiment_config& bad) {
        return thrown_message([&] { run_experiment(bad, initial); });
    };

    {
        experiment_config bad = base;
        bad.seed = 12;
        expect_contains(message_for(bad), "seed");
    }
    {
        experiment_config bad = base;
        bad.rng = rng_version::v2;
        expect_contains(message_for(bad), "rng_version");
    }
    {
        experiment_config bad = base;
        bad.rounding = rounding_kind::floor;
        expect_contains(message_for(bad), "rounding");
    }
    {
        experiment_config bad = base;
        bad.policy = negative_load_policy::prevent;
        expect_contains(message_for(bad), "policy");
    }
    {
        experiment_config bad = base;
        bad.record_every = 2;
        expect_contains(message_for(bad), "record_every");
    }
    {
        experiment_config bad = base;
        bad.process = process_kind::continuous;
        expect_contains(message_for(bad), "continuous");
    }
    {
        experiment_config bad = base;
        bad.checkpoint_spec_hash = 123;
        expect_contains(message_for(bad), "spec_hash");
    }
    {
        experiment_config bad = base;
        bad.rounds = 30; // snapshot round 40 is beyond the end
        expect_contains(message_for(bad), "round");
    }
    {
        experiment_config bad = base;
        bad.run_continuous_twin = true;
        expect_contains(message_for(bad), "twin");
    }
    {
        // A shape mismatch survives parsing (the snapshot is internally
        // consistent) but must be refused by the engine restore.
        engine_checkpoint forged = snapshot;
        forged.discrete.load.pop_back();
        experiment_config bad = base;
        bad.resume = &forged;
        expect_contains(message_for(bad), "load");
    }
}

// ---------------------------------------------------------------------------
// Mismatch rejection at the campaign driver.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, CampaignResumeRejectsSpecHashMismatch)
{
    campaign_spec spec = checkpoint_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);
    const std::string path = snapshot_path(spec);

    campaign_spec other = spec;
    other.base.rounds = 80; // different campaign, different spec_hash
    campaign_options resume;
    resume.resume_path = path;
    const std::string message =
        thrown_message([&] { run_campaign(other, resume); });
    expect_contains(message, "spec_hash");
    expect_contains(message, path);
}

TEST_F(CheckpointTest, CampaignResumeRejectsRngVersionMismatch)
{
    campaign_spec spec = checkpoint_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);

    // Forge a snapshot claiming rng_version 2, with a self-consistent
    // probe word so it parses — the campaign driver must still refuse it
    // against the scenario's rng_version 1.
    engine_checkpoint forged = read_checkpoint_file(snapshot_path(spec));
    forged.rng_version = 2;
    forged.rng_check = checkpoint_rng_check(2, forged.seed, forged.round);
    const std::string forged_path = dir_ + "/forged_rng.ckpt";
    write_checkpoint_file(forged_path, forged);

    campaign_options resume;
    resume.resume_path = forged_path;
    expect_contains(thrown_message([&] { run_campaign(spec, resume); }),
                    "rng_version");
}

TEST_F(CheckpointTest, CampaignResumeRejectsRecordEveryMismatch)
{
    campaign_spec spec = checkpoint_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    with_snapshots.record_every = 1;
    run_campaign(spec, with_snapshots);

    campaign_options resume;
    resume.resume_path = snapshot_path(spec);
    resume.record_every = 5;
    expect_contains(thrown_message([&] { run_campaign(spec, resume); }),
                    "record_every");
}

TEST_F(CheckpointTest, CampaignResumeRejectsScenarioOutsideShard)
{
    campaign_spec spec = checkpoint_spec();
    spec.axes["seed"] = {"1", "2"};
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);

    // Scenario 0 lands in round-robin shard 0 of 2; shard 1 must refuse
    // its snapshot rather than silently run it.
    campaign_options resume;
    resume.resume_path = snapshot_path(spec, 0);
    resume.shard_index = 1;
    resume.shard_count = 2;
    expect_contains(thrown_message([&] { run_campaign(spec, resume); }),
                    "shard");
}

TEST_F(CheckpointTest, CheckpointKnobsMustBeSetTogether)
{
    const campaign_spec spec = checkpoint_spec();
    {
        campaign_options options;
        options.checkpoint_every = 5;
        expect_contains(thrown_message([&] { run_campaign(spec, options); }),
                        "together");
    }
    {
        campaign_options options;
        options.checkpoint_dir = dir_;
        expect_contains(thrown_message([&] { run_campaign(spec, options); }),
                        "together");
    }
    {
        campaign_options options;
        options.resume_path = dir_ + "/does_not_exist.ckpt";
        expect_contains(thrown_message([&] { run_campaign(spec, options); }),
                        "does_not_exist.ckpt");
    }
}

// ---------------------------------------------------------------------------
// Corruption battery (mirrors the lambda-sidecar shapes).
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, CorruptSnapshotFilesAreRejected)
{
    campaign_spec spec = checkpoint_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);
    const std::string image = read_binary(snapshot_path(spec));
    ASSERT_GT(image.size(), 100u);
    const std::size_t header = std::string(kCheckpointHeader).size() + 1;

    std::string flipped_payload = image;
    flipped_payload[header + 8] ^= 0x40;
    std::string zeroed_checksum = image;
    for (std::size_t i = image.size() - 8; i < image.size(); ++i)
        zeroed_checksum[i] = '\0';

    const std::vector<std::string> corruptions = {
        "",                                           // empty file
        image.substr(0, 10),                          // truncated header
        "# dlb lambda sidecar v1\n" + image.substr(header), // wrong magic
        std::string(kCheckpointHeader) + "\n",        // header, no payload
        image.substr(0, image.size() * 6 / 10),       // truncated payload
        flipped_payload,                              // flipped byte
        image + "trailing garbage",                   // extra bytes
        zeroed_checksum,                              // checksum wiped
    };
    const std::string path = dir_ + "/corrupt.ckpt";
    for (std::size_t i = 0; i < corruptions.size(); ++i) {
        SCOPED_TRACE("corruption shape " + std::to_string(i));
        write_binary(path, corruptions[i]);
        EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
        expect_contains(
            thrown_message([&] { read_checkpoint_file(path); }),
            "checkpoint");
    }
}

TEST_F(CheckpointTest, InternallyInconsistentSnapshotsAreRejected)
{
    campaign_spec spec = checkpoint_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);
    const engine_checkpoint valid =
        read_checkpoint_file(snapshot_path(spec));

    {
        // Header round drifted from the engine's own round (probe word kept
        // consistent so the round check, not the RNG check, must fire).
        engine_checkpoint forged = valid;
        forged.round += 1;
        forged.rng_check =
            checkpoint_rng_check(forged.rng_version, forged.seed, forged.round);
        expect_contains(
            thrown_message([&] { parse_checkpoint(serialize_checkpoint(forged)); }),
            "round");
    }
    {
        // A probe word from some other RNG implementation.
        engine_checkpoint forged = valid;
        forged.rng_check ^= 1;
        expect_contains(
            thrown_message([&] { parse_checkpoint(serialize_checkpoint(forged)); }),
            "rng");
    }
    {
        // Scheme kind outside the wire range.
        engine_checkpoint forged = valid;
        forged.discrete.scheme.kind = 9;
        expect_contains(
            thrown_message([&] { parse_checkpoint(serialize_checkpoint(forged)); }),
            "scheme");
    }
}

// ---------------------------------------------------------------------------
// Windowed sampling (measure_windows).
// ---------------------------------------------------------------------------

campaign_spec windows_spec()
{
    campaign_spec spec = checkpoint_spec();
    spec.base.workload = "poisson";
    spec.base.workload_rate = 3.0;
    return spec;
}

TEST_F(CheckpointTest, WindowZeroReproducesTheFullRunExactly)
{
    const campaign_spec spec = windows_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    const auto full = run_campaign(spec, with_snapshots);
    ASSERT_EQ(full.scenarios.size(), 1u);
    ASSERT_TRUE(full.scenarios[0].error.empty()) << full.scenarios[0].error;

    const engine_checkpoint snapshot =
        read_checkpoint_file(snapshot_path(spec));
    measure_windows_options options;
    options.windows = 1;
    options.window_rounds = spec.base.rounds - snapshot.round;
    const auto result = measure_windows(spec, snapshot, options);

    ASSERT_EQ(result.samples.size(), 1u);
    EXPECT_EQ(result.samples[0].seed, spec.base.seed);
    EXPECT_EQ(result.samples[0].discrepancy,
              full.scenarios[0].final_max_minus_average)
        << "window 0 with W = rounds - start_round must replay the tail";
    EXPECT_EQ(result.mean, result.samples[0].discrepancy);
    EXPECT_EQ(result.stddev, 0.0);
    EXPECT_EQ(result.ci95_half_width, 0.0);
    EXPECT_EQ(result.start_round, snapshot.round);
}

TEST_F(CheckpointTest, WindowAggregatesAreConsistent)
{
    const campaign_spec spec = windows_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);
    const engine_checkpoint snapshot =
        read_checkpoint_file(snapshot_path(spec));

    measure_windows_options options;
    options.windows = 5;
    options.window_rounds = 10;
    const auto result = measure_windows(spec, snapshot, options);
    ASSERT_EQ(result.samples.size(), 5u);
    EXPECT_EQ(result.window_rounds, 10);

    // Window 0 keeps the run's seed; every other window is re-seeded and
    // all seeds are pairwise distinct.
    EXPECT_EQ(result.samples[0].seed, spec.base.seed);
    for (std::size_t i = 0; i < result.samples.size(); ++i)
        for (std::size_t j = i + 1; j < result.samples.size(); ++j)
            EXPECT_NE(result.samples[i].seed, result.samples[j].seed)
                << "windows " << i << " and " << j << " share a seed";

    double sum = 0.0;
    for (const auto& sample : result.samples) sum += sample.discrepancy;
    EXPECT_DOUBLE_EQ(result.mean, sum / 5.0);
    EXPECT_GE(result.stddev, 0.0);
    EXPECT_DOUBLE_EQ(result.ci95_half_width,
                     1.96 * result.stddev / std::sqrt(5.0));

    // Determinism: the same snapshot and options reproduce the samples.
    const auto again = measure_windows(spec, snapshot, options);
    ASSERT_EQ(again.samples.size(), result.samples.size());
    for (std::size_t i = 0; i < result.samples.size(); ++i) {
        EXPECT_EQ(again.samples[i].seed, result.samples[i].seed);
        EXPECT_EQ(again.samples[i].discrepancy, result.samples[i].discrepancy);
    }
}

TEST_F(CheckpointTest, WindowedSamplingRejectsNonDiscreteAndBadOptions)
{
    campaign_spec continuous = windows_spec();
    continuous.base.process = "continuous";
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(continuous, with_snapshots);
    const engine_checkpoint snapshot =
        read_checkpoint_file(snapshot_path(continuous));

    measure_windows_options options;
    options.windows = 2;
    options.window_rounds = 5;
    expect_contains(
        thrown_message([&] { measure_windows(continuous, snapshot, options); }),
        "discrete");

    const campaign_spec spec = windows_spec();
    {
        measure_windows_options bad = options;
        bad.windows = 0;
        EXPECT_THROW(measure_windows(spec, snapshot, bad),
                     std::invalid_argument);
    }
    {
        measure_windows_options bad = options;
        bad.window_rounds = 0;
        EXPECT_THROW(measure_windows(spec, snapshot, bad),
                     std::invalid_argument);
    }
}

TEST_F(CheckpointTest, WindowReportsAreWellFormed)
{
    const campaign_spec spec = windows_spec();
    campaign_options with_snapshots;
    with_snapshots.checkpoint_every = 40;
    with_snapshots.checkpoint_dir = dir_;
    run_campaign(spec, with_snapshots);
    const engine_checkpoint snapshot =
        read_checkpoint_file(snapshot_path(spec));

    measure_windows_options options;
    options.windows = 3;
    options.window_rounds = 10;
    const auto result = measure_windows(spec, snapshot, options);

    std::ostringstream csv;
    write_windows_csv(csv, result);
    const std::string csv_text = csv.str();
    expect_contains(csv_text,
                    "window,seed,start_round,window_rounds,discrepancy,"
                    "mean,stddev,ci95_half_width");
    // Header plus one row per window.
    EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 4);

    std::ostringstream json;
    write_windows_json(json, result);
    expect_contains(json.str(), "\"windows\"");
    expect_contains(json.str(), "\"ci95_half_width\"");

    // Byte-stable like every other report.
    std::ostringstream csv_again;
    write_windows_csv(csv_again, measure_windows(spec, snapshot, options));
    EXPECT_EQ(csv_text, csv_again.str());
}

} // namespace
} // namespace dlb
