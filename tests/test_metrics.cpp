// Tests for the Section VI metrics and the remaining-imbalance tracker.
#include <gtest/gtest.h>

#include <vector>

#include "core/metrics.hpp"
#include "graph/generators.hpp"

namespace dlb {
namespace {

TEST(Metrics, MaxMinusAverage)
{
    const std::vector<std::int64_t> load{10, 20, 30};
    EXPECT_DOUBLE_EQ(max_minus_average(std::span<const std::int64_t>(load)), 10.0);
    const std::vector<double> flat{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(max_minus_average(std::span<const double>(flat)), 0.0);
}

TEST(Metrics, MaxMinusIdeal)
{
    const std::vector<std::int64_t> load{10, 20};
    const std::vector<double> ideal{12.0, 15.0};
    EXPECT_DOUBLE_EQ(
        max_minus_ideal(std::span<const std::int64_t>(load), ideal), 5.0);
}

TEST(Metrics, MaxLocalDifference)
{
    const graph g = make_path(4);
    const std::vector<std::int64_t> load{0, 10, 3, 4};
    EXPECT_DOUBLE_EQ(max_local_difference(g, std::span<const std::int64_t>(load)),
                     10.0);
}

TEST(Metrics, MaxLocalDifferenceIgnoresNonEdges)
{
    // Star: only center-leaf differences matter.
    const graph g = make_star(4);
    const std::vector<std::int64_t> load{5, 0, 10, 5};
    // Edges: (0,1): 5, (0,2): 5, (0,3): 0. Leaf-leaf difference 10 ignored.
    EXPECT_DOUBLE_EQ(max_local_difference(g, std::span<const std::int64_t>(load)),
                     5.0);
}

TEST(Metrics, NormalizedLocalDifference)
{
    const graph g = make_path(2);
    const std::vector<std::int64_t> load{10, 30};
    const std::vector<double> speeds{1.0, 3.0};
    EXPECT_DOUBLE_EQ(max_local_difference_normalized(
                         g, std::span<const std::int64_t>(load), speeds),
                     0.0);
}

TEST(Metrics, Potential)
{
    const std::vector<std::int64_t> load{0, 10};
    const std::vector<double> ideal{5.0, 5.0};
    EXPECT_DOUBLE_EQ(potential(std::span<const std::int64_t>(load), ideal), 50.0);
    EXPECT_DOUBLE_EQ(potential_homogeneous(std::span<const std::int64_t>(load)),
                     50.0);
}

TEST(Metrics, MinLoadAndDeviation)
{
    const std::vector<std::int64_t> load{3, -2, 7};
    EXPECT_DOUBLE_EQ(min_load(std::span<const std::int64_t>(load)), -2.0);

    const std::vector<std::int64_t> a{1, 2, 3};
    const std::vector<double> b{1.5, 2.0, 0.0};
    EXPECT_DOUBLE_EQ(
        max_deviation(std::span<const std::int64_t>(a), std::span<const double>(b)),
        3.0);
}

TEST(Metrics, DeltaInfinity)
{
    const std::vector<double> load{9.0, 11.0};
    const std::vector<double> ideal{10.0, 10.0};
    EXPECT_DOUBLE_EQ(delta_infinity(std::span<const double>(load), ideal), 1.0);
}

TEST(ImbalanceTracker, DetectsPlateau)
{
    imbalance_tracker tracker(10, 0.01);
    // Steady improvement: never converged.
    for (int i = 0; i < 50; ++i) tracker.observe(1000.0 / (i + 1));
    EXPECT_FALSE(tracker.converged());
    // Plateau at ~8 for a full window.
    for (int i = 0; i < 12; ++i) tracker.observe(8.0 + (i % 3));
    EXPECT_TRUE(tracker.converged());
    EXPECT_NEAR(tracker.remaining(), 9.0, 1.0);
}

TEST(ImbalanceTracker, SmallFluctuationsDontResetPlateau)
{
    imbalance_tracker tracker(5, 0.05);
    tracker.observe(100.0);
    // Tiny improvements below 5% don't count as progress.
    for (int i = 0; i < 6; ++i) tracker.observe(99.0 - i * 0.1);
    EXPECT_TRUE(tracker.converged());
}

TEST(ImbalanceTracker, LargeImprovementResets)
{
    imbalance_tracker tracker(5, 0.01);
    for (int i = 0; i < 6; ++i) tracker.observe(100.0);
    EXPECT_TRUE(tracker.converged());
    tracker.observe(10.0); // big improvement: plateau broken
    EXPECT_FALSE(tracker.converged());
}

TEST(ImbalanceTracker, Validation)
{
    EXPECT_THROW(imbalance_tracker(0), std::invalid_argument);
    EXPECT_THROW(imbalance_tracker(10, -1.0), std::invalid_argument);
}

TEST(Metrics, EmptyInputs)
{
    EXPECT_DOUBLE_EQ(max_minus_average(std::span<const double>{}), 0.0);
    EXPECT_DOUBLE_EQ(potential_homogeneous(std::span<const double>{}), 0.0);
    EXPECT_DOUBLE_EQ(min_load(std::span<const double>{}), 0.0);
}

} // namespace
} // namespace dlb
